//! Ablation: which optimiser drives the SAT decoder?
//!
//! Compares NSGA-II (the default), SPEA2 and pure random search at equal
//! evaluation budgets on the full case study, scored by the hypervolume of
//! the resulting Pareto-front approximation (objectives normalised to a
//! common reference point).
//!
//! ```text
//! cargo run -p eea-bench --bin ablation_moea --release
//! EEA_EVALS=10000 cargo run -p eea-bench --bin ablation_moea --release
//! ```

use eea_bench::{env_u64, env_usize, paper_diag_spec};
use eea_dse::{DseProblem, EeaError};
use eea_moea::{
    hypervolume, run, run_spea2, Nsga2Config, ParetoArchive, Problem, Rng,
};

/// Normalises archive objective vectors into [0, 1]^3 against fixed bounds
/// and computes the hypervolume w.r.t. the (1, 1, 1) reference.
fn normalized_hypervolume(entries: &[Vec<f64>], bounds: &[(f64, f64); 3]) -> f64 {
    let front: Vec<Vec<f64>> = entries
        .iter()
        .map(|o| {
            o.iter()
                .zip(bounds)
                .map(|(&v, &(lo, hi))| ((v - lo) / (hi - lo)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    hypervolume(&front, &[1.0001, 1.0001, 1.0001])
}

fn main() -> Result<(), EeaError> {
    let evaluations = env_usize("EEA_EVALS", 3_000);
    let seed = env_u64("EEA_SEED", 2014);
    let (_case, diag) = paper_diag_spec()?;

    // Shared objective bounds for normalisation (cost, -quality, shutoff).
    let bounds = [(600.0, 800.0), (-1.0, 0.0), (0.0, 90_000.0)];
    let cfg = Nsga2Config {
        population: 60.min(evaluations.max(2)),
        evaluations,
        seed,
        ..Nsga2Config::default()
    };

    // NSGA-II.
    let mut problem = DseProblem::new(&diag);
    let mut cfg_n = cfg.clone();
    cfg_n.seeds = problem.corner_genotypes();
    let t = std::time::Instant::now();
    let nsga = run(&mut problem, &cfg_n, |_, _| {});
    let nsga_time = t.elapsed();
    let nsga_hv = normalized_hypervolume(
        &nsga
            .archive
            .entries()
            .iter()
            .map(|e| e.objectives.clone())
            .collect::<Vec<_>>(),
        &bounds,
    );

    // SPEA2.
    let mut problem = DseProblem::new(&diag);
    let mut cfg_s = cfg.clone();
    cfg_s.seeds = problem.corner_genotypes();
    let t = std::time::Instant::now();
    let spea = run_spea2(&mut problem, &cfg_s, |_, _| {});
    let spea_time = t.elapsed();
    let spea_hv = normalized_hypervolume(
        &spea
            .archive
            .entries()
            .iter()
            .map(|e| e.objectives.clone())
            .collect::<Vec<_>>(),
        &bounds,
    );

    // Random search (same decoder, uniform genotypes, no evolution).
    let mut problem = DseProblem::new(&diag);
    let n = problem.genotype_len();
    let mut rng = Rng::new(seed);
    let mut random_archive: ParetoArchive<()> = ParetoArchive::new();
    let t = std::time::Instant::now();
    for _ in 0..evaluations {
        let genotype: Vec<f64> = (0..n).map(|_| rng.unit()).collect();
        if let Some(obj) = problem.evaluate(&genotype) {
            random_archive.offer(obj, ());
        }
    }
    let random_time = t.elapsed();
    let random_hv = normalized_hypervolume(
        &random_archive
            .entries()
            .iter()
            .map(|e| e.objectives.clone())
            .collect::<Vec<_>>(),
        &bounds,
    );

    println!("optimizer ablation at {evaluations} evaluations (seed {seed}):\n");
    println!(
        "{:>14} {:>10} {:>14} {:>10}",
        "optimizer", "|front|", "hypervolume", "time"
    );
    println!(
        "{:>14} {:>10} {:>14.4} {:>10.1?}",
        "NSGA-II",
        nsga.archive.len(),
        nsga_hv,
        nsga_time
    );
    println!(
        "{:>14} {:>10} {:>14.4} {:>10.1?}",
        "SPEA2",
        spea.archive.len(),
        spea_hv,
        spea_time
    );
    println!(
        "{:>14} {:>10} {:>14.4} {:>10.1?}",
        "random",
        random_archive.len(),
        random_hv,
        random_time
    );
    println!(
        "\nevolutionary search vs random: {:+.1} % (NSGA-II), {:+.1} % (SPEA2) hypervolume",
        (nsga_hv / random_hv - 1.0) * 100.0,
        (spea_hv / random_hv - 1.0) * 100.0
    );
    Ok(())
}
