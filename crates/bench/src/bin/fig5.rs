//! Regenerates **Fig. 5**: the Pareto tradeoff between monetary cost and
//! test quality, with markers split at a 20 s shut-off time.
//!
//! ```text
//! cargo run -p eea-bench --bin fig5 --release
//! EEA_EVALS=100000 cargo run -p eea-bench --bin fig5 --release   # paper budget
//! ```

use eea_bench::{env_u64, env_usize, out_path, run_case_study_exploration};
use eea_dse::{fig5_ascii, fig5_csv, fig5_points, EeaError};

fn main() -> Result<(), EeaError> {
    let evaluations = env_usize("EEA_EVALS", 10_000);
    let seed = env_u64("EEA_SEED", 2014);
    let (_case, _diag, result) = run_case_study_exploration(evaluations, seed, 0)?;

    println!(
        "{} evaluations in {:.1} s ({:.0} evals/s); paper: 100,000 in ~29 min (~57/s, 8 cores)",
        result.evaluations,
        result.duration_s,
        result.evals_per_second()
    );
    println!(
        "{} non-dominated implementations (paper: 176)",
        result.front.len()
    );

    let points = fig5_points(&result.front);
    let fast = points.iter().filter(|p| p.fast_shutoff).count();
    println!(
        "marker split at 20 s shut-off: {} fast (o / paper: bullet), {} slow (^ / paper: triangle)\n",
        fast,
        points.len() - fast
    );
    println!("{}", fig5_ascii(&points, 78, 22));

    let csv = fig5_csv(&points);
    let path = out_path("fig5.csv");
    match std::fs::write(&path, &csv) {
        Ok(()) => println!("wrote {} ({} rows)", path.display(), points.len()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    Ok(())
}
