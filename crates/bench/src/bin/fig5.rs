//! Regenerates **Fig. 5**: the Pareto tradeoff between monetary cost and
//! test quality, with markers split at a 20 s shut-off time.
//!
//! The exploration runs once per transport backend selected through
//! `EEA_TRANSPORTS` (default: classic mirrored CAN, the paper's setting) —
//! the Eq. (5) shut-off objective prices remote transfers through the
//! backend, so the fronts differ per transport. The classic front lands in
//! `fig5.csv` (the historical artifact name); other backends land in
//! `fig5-<label>.csv`.
//!
//! ```text
//! cargo run -p eea-bench --bin fig5 --release
//! EEA_EVALS=100000 cargo run -p eea-bench --bin fig5 --release   # paper budget
//! EEA_TRANSPORTS=classic-can,can-fd cargo run -p eea-bench --bin fig5 --release
//! ```

use eea_bench::{
    env_transports, env_u64, env_usize, out_path, run_case_study_exploration_with_transport,
};
use eea_dse::{fig5_ascii, fig5_csv, fig5_points, EeaError, TransportConfig, TransportKind};

fn main() -> Result<(), EeaError> {
    let evaluations = env_usize("EEA_EVALS", 10_000);
    let seed = env_u64("EEA_SEED", 2014);

    for kind in env_transports(&[TransportKind::MirroredCan]) {
        println!("== transport: {kind} ==");
        let transport = TransportConfig::for_kind(kind);
        let (_case, _diag, result) =
            run_case_study_exploration_with_transport(evaluations, seed, 0, transport)?;

        println!(
            "{} evaluations in {:.1} s ({:.0} evals/s); paper: 100,000 in ~29 min (~57/s, 8 cores)",
            result.evaluations,
            result.duration_s,
            result.evals_per_second()
        );
        println!(
            "{} non-dominated implementations (paper: 176)",
            result.front.len()
        );

        let points = fig5_points(&result.front);
        let fast = points.iter().filter(|p| p.fast_shutoff).count();
        println!(
            "marker split at 20 s shut-off: {} fast (o / paper: bullet), {} slow (^ / paper: triangle)\n",
            fast,
            points.len() - fast
        );
        println!("{}", fig5_ascii(&points, 78, 22));

        let csv = fig5_csv(&points);
        let name = match kind {
            TransportKind::MirroredCan => "fig5.csv".to_string(),
            other => format!("fig5-{}.csv", other.label()),
        };
        let path = out_path(&name);
        match std::fs::write(&path, &csv) {
            Ok(()) => println!("wrote {} ({} rows)\n", path.display(), points.len()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    Ok(())
}
