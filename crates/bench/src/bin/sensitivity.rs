//! Sensitivity analysis: how the Fig. 5 front reacts to the memory-cost
//! assumptions.
//!
//! The paper's headline ("80.7 % quality at < +3.7 % cost") hinges on
//! gateway memory being cheap relative to ECU hardware. This experiment
//! sweeps the ECU-to-gateway memory-cost ratio and the absolute memory
//! price, reporting the best in-budget quality and the storage mix of the
//! cheapest high-quality design for each setting.
//!
//! ```text
//! cargo run -p eea-bench --bin sensitivity --release
//! EEA_EVALS=5000 cargo run -p eea-bench --bin sensitivity --release
//! ```

use eea_bench::{env_u64, env_usize};
use eea_bist::paper_table1;
use eea_dse::explore::baseline_cost;
use eea_dse::{augment, explore, headline_with_budget, DseConfig, EeaError};
use eea_model::{build_case_study, CaseStudyConfig};
use eea_moea::Nsga2Config;

fn main() -> Result<(), EeaError> {
    let evaluations = env_usize("EEA_EVALS", 2_000);
    let seed = env_u64("EEA_SEED", 2014);

    println!(
        "memory-cost sensitivity at {evaluations} evaluations per point (seed {seed}):\n"
    );
    println!(
        "{:>12} {:>10} {:>16} {:>12} {:>14} {:>14}",
        "ecu [/B]", "ratio", "quality@+3.7%", "extra [%]", "gw bytes", "local bytes"
    );

    // Sweep: absolute ECU memory price x ECU/gateway ratio.
    for &ecu_cost in &[4e-7, 4e-6, 4e-5] {
        for &ratio in &[1.0, 10.0, 100.0] {
            let cfg_case = CaseStudyConfig {
                ecu_memory_cost_per_byte: ecu_cost,
                gateway_memory_cost_per_byte: ecu_cost / ratio,
                ..CaseStudyConfig::default()
            };
            let case = build_case_study(&cfg_case);
            let diag = augment(&case, &paper_table1())?;
            let cfg = DseConfig {
                nsga2: Nsga2Config {
                    population: 60.min(evaluations.max(2)),
                    evaluations,
                    seed,
                    ..Nsga2Config::default()
                },
                threads: 0,
                ..DseConfig::default()
            };
            let res = explore(&diag, &cfg, |_, _| {});
            let base = baseline_cost(&case, 800, seed ^ 1, 0)?;
            // Storage mix of the best in-budget design (present whenever
            // the headline is).
            let budget = base * 1.037;
            let best_in_budget = res
                .front
                .iter()
                .filter(|e| e.objectives.cost <= budget)
                .max_by(|a, b| a.objectives.test_quality.total_cmp(&b.objectives.test_quality));
            match (headline_with_budget(&res.front, Some(base), 1.037), best_in_budget) {
                (Some(hl), Some(best)) => {
                    println!(
                        "{:>12.0e} {:>10.0} {:>15.1}% {:>12.2} {:>14} {:>14}",
                        ecu_cost,
                        ratio,
                        hl.best_quality_pct_in_budget,
                        hl.extra_cost_pct,
                        best.memory.gateway_bytes,
                        best.memory.distributed_bytes
                    );
                }
                _ => println!(
                    "{:>12.0e} {:>10.0} {:>16} {:>12} {:>14} {:>14}",
                    ecu_cost, ratio, "none fits", "-", "-", "-"
                ),
            }
        }
    }
    println!(
        "\nreading: as memory gets expensive (rows downward) or the gateway discount\n\
         disappears (ratio 1), high coverage stops being nearly free — the paper's\n\
         headline lives in the cheap-shared-memory regime."
    );
    Ok(())
}
