//! Shared helpers of the experiment binaries and Criterion benches that
//! regenerate the paper's tables and figures.
//!
//! Every experiment is deterministic for fixed parameters; environment
//! variables scale the budgets:
//!
//! | variable | default | used by |
//! |---|---|---|
//! | `EEA_EVALS` | 10,000 | `fig5`, `fig6`, `headline` (paper: 100,000) |
//! | `EEA_SEED` | 2014 | exploration seed |
//! | `EEA_CUT_GATES` | 1,500 | `table1` CUT size |
//! | `EEA_PRP_MAX` | 16,384 | `table1` largest PRP count (paper: 500,000) |
//! | `EEA_THREADS` | auto | worker threads for evaluation (results are bit-identical at any count) |
//! | `EEA_OUT_DIR` | `.` (repo root) | where `fig5`, `fig6`, `bench_parallel`, `fleet_campaign` write their CSV/JSON artifacts |
//! | `EEA_FLEET_VEHICLES` | 100,000 | `fleet_campaign` fleet size |
//! | `EEA_FLEET_EVALS` | 2,000 | `fleet_campaign` exploration budget for the blueprint front |
//! | `EEA_FLEET_SCALE` | `100000,1000000,10000000` | `fleet_campaign` scale-sweep fleet sizes (comma-separated; empty disables the sweep) |
//! | `EEA_TRANSPORTS` | per binary | comma-separated transport backends (`classic-can`, `can-fd`, `flexray`); `fig5`/`fig6` default to `classic-can`, `fleet_campaign` to all three |
//! | `EEA_SOAK_SCALE` | `100000,1000000,10000000` | `gateway_soak` fleet sizes (comma-separated; empty disables the sweep) |
//! | `EEA_SOAK_QUEUE` | 8,192 | `gateway_soak` ingest queue capacity (also sizes its shed probe) |
//! | `EEA_SCHED_VEHICLES` | 100,000 | `sched_campaign` fleet size for the flat-vs-schedule window comparison |

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use eea_bist::paper_table1;
use eea_dse::{
    augment, explore, DiagSpec, DseConfig, DseResult, EeaError, TransportConfig, TransportKind,
};
use eea_model::{paper_case_study, CaseStudy};

/// Reads a `usize` environment knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads the `EEA_TRANSPORTS` knob: a comma-separated list of transport
/// labels (`classic-can`, `can-fd`, `flexray`, as printed by
/// [`TransportKind::label`]). Unknown labels are reported on stderr and
/// skipped; an unset variable — or one that yields no usable backend —
/// falls back to `default`.
pub fn env_transports(default: &[TransportKind]) -> Vec<TransportKind> {
    let Ok(raw) = std::env::var("EEA_TRANSPORTS") else {
        return default.to_vec();
    };
    let mut kinds = Vec::new();
    for label in raw.split(',').map(str::trim).filter(|l| !l.is_empty()) {
        match TransportKind::ALL.iter().find(|k| k.label() == label) {
            Some(&k) if !kinds.contains(&k) => kinds.push(k),
            Some(_) => {}
            None => eprintln!("EEA_TRANSPORTS: unknown backend {label:?} (skipped)"),
        }
    }
    if kinds.is_empty() {
        eprintln!("EEA_TRANSPORTS selected no backend; using the default set");
        return default.to_vec();
    }
    kinds
}

/// Reads a comma-separated `u64` list knob (`EEA_FLEET_SCALE`,
/// `EEA_SOAK_SCALE`, ...). Unparsable entries are skipped; an unset
/// variable falls back to `default`; a set-but-empty (or all-garbage)
/// variable yields an empty list, which disables the sweep it drives.
pub fn env_u64_list(name: &str, default: &[u64]) -> Vec<u64> {
    let Ok(raw) = std::env::var(name) else {
        return default.to_vec();
    };
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect()
}

/// Reads the `EEA_FLEET_SCALE` knob: the fleet sizes for the
/// `fleet_campaign` scale sweep.
pub fn env_scale_sweep(default: &[u64]) -> Vec<u64> {
    env_u64_list("EEA_FLEET_SCALE", default)
}

/// The process's peak resident-set size ("VmHWM" high-water mark) in KiB,
/// read from `/proc/self/status`. Returns `None` off Linux or when the
/// field is missing — callers report the value as unavailable rather than
/// failing the run. Note the high-water mark is monotone over the process
/// lifetime: when sampling a sweep, run the scale points in ascending
/// order so each sample reflects the largest campaign seen so far.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Resolves where an experiment artifact (CSV/JSON) lands: inside
/// `$EEA_OUT_DIR` when the variable is set and non-empty (the directory is
/// created if missing), the current directory otherwise. Falls back to the
/// bare name when the directory cannot be created, so binaries keep
/// working in read-only-ish environments.
pub fn out_path(name: &str) -> std::path::PathBuf {
    match std::env::var("EEA_OUT_DIR") {
        Ok(dir) if !dir.is_empty() => {
            let dir = std::path::PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("EEA_OUT_DIR {}: {e}; writing to current dir", dir.display());
                return std::path::PathBuf::from(name);
            }
            dir.join(name)
        }
        _ => std::path::PathBuf::from(name),
    }
}

/// The paper's augmented case study: all 36 Table I profiles on all 15
/// ECUs.
///
/// # Errors
///
/// Propagates any [`EeaError`] from the augmentation (the paper case study
/// itself always augments cleanly).
pub fn paper_diag_spec() -> Result<(CaseStudy, DiagSpec), EeaError> {
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1())?;
    Ok((case, diag))
}

/// Runs the case-study exploration with the standard experiment knobs,
/// over the classic mirrored-CAN transport.
///
/// `threads = 0` means one worker per available CPU (overridable via
/// `EEA_THREADS`); the result is bit-identical at any thread count.
pub fn run_case_study_exploration(
    evaluations: usize,
    seed: u64,
    threads: usize,
) -> Result<(CaseStudy, DiagSpec, DseResult), EeaError> {
    run_case_study_exploration_with_transport(
        evaluations,
        seed,
        threads,
        TransportConfig::MirroredCan,
    )
}

/// [`run_case_study_exploration`] over an explicit transport backend: the
/// Eq. (5) shut-off objective prices its remote transfers through
/// `transport`, so fronts explored on different backends genuinely differ.
pub fn run_case_study_exploration_with_transport(
    evaluations: usize,
    seed: u64,
    threads: usize,
    transport: TransportConfig,
) -> Result<(CaseStudy, DiagSpec, DseResult), EeaError> {
    let (case, diag) = paper_diag_spec()?;
    let cfg = DseConfig {
        nsga2: eea_moea::Nsga2Config {
            population: 100.min(evaluations.max(2)),
            evaluations,
            seed,
            ..eea_moea::Nsga2Config::default()
        },
        threads,
        transport,
        ..DseConfig::default()
    };
    let result = explore(&diag, &cfg, |evals, archive| {
        if evals % 2_000 < 100 {
            eprintln!("  {evals} evaluations, archive = {archive}");
        }
    });
    Ok((case, diag, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_parse() {
        std::env::remove_var("EEA_TEST_KNOB");
        assert_eq!(env_usize("EEA_TEST_KNOB", 7), 7);
        std::env::set_var("EEA_TEST_KNOB", "42");
        assert_eq!(env_usize("EEA_TEST_KNOB", 7), 42);
        assert_eq!(env_u64("EEA_TEST_KNOB", 7), 42);
        std::env::set_var("EEA_TEST_KNOB", "garbage");
        assert_eq!(env_usize("EEA_TEST_KNOB", 7), 7);
        std::env::remove_var("EEA_TEST_KNOB");
    }

    #[test]
    fn out_path_honors_env() {
        std::env::remove_var("EEA_OUT_DIR");
        assert_eq!(out_path("x.json"), std::path::PathBuf::from("x.json"));
        let dir = std::env::temp_dir().join("eea-out-test");
        std::env::set_var("EEA_OUT_DIR", &dir);
        assert_eq!(out_path("x.json"), dir.join("x.json"));
        assert!(dir.is_dir(), "out_path creates the directory");
        std::env::remove_var("EEA_OUT_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn transport_knob_parses() {
        std::env::remove_var("EEA_TRANSPORTS");
        assert_eq!(
            env_transports(&[TransportKind::MirroredCan]),
            vec![TransportKind::MirroredCan]
        );
        std::env::set_var("EEA_TRANSPORTS", "can-fd, flexray,can-fd,bogus");
        assert_eq!(
            env_transports(&[TransportKind::MirroredCan]),
            vec![TransportKind::CanFd, TransportKind::FlexRay]
        );
        std::env::set_var("EEA_TRANSPORTS", "bogus");
        assert_eq!(
            env_transports(&TransportKind::ALL),
            TransportKind::ALL.to_vec()
        );
        std::env::remove_var("EEA_TRANSPORTS");
    }

    #[test]
    fn scale_sweep_knob_parses() {
        std::env::remove_var("EEA_FLEET_SCALE");
        assert_eq!(env_scale_sweep(&[100_000]), vec![100_000]);
        std::env::set_var("EEA_FLEET_SCALE", "1000, 2000,garbage,3000");
        assert_eq!(env_scale_sweep(&[100_000]), vec![1000, 2000, 3000]);
        std::env::set_var("EEA_FLEET_SCALE", "");
        assert_eq!(env_scale_sweep(&[100_000]), Vec::<u64>::new());
        std::env::remove_var("EEA_FLEET_SCALE");
        std::env::remove_var("EEA_TEST_LIST");
        assert_eq!(env_u64_list("EEA_TEST_LIST", &[5, 6]), vec![5, 6]);
        std::env::set_var("EEA_TEST_LIST", "7, 8,bad");
        assert_eq!(env_u64_list("EEA_TEST_LIST", &[5, 6]), vec![7, 8]);
        std::env::remove_var("EEA_TEST_LIST");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        // The helper is best-effort by contract, but on the Linux CI
        // machines it must produce a plausible nonzero figure.
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("VmHWM present on Linux");
            assert!(kb > 0);
        }
    }

    #[test]
    fn paper_spec_shape() {
        let (case, diag) = paper_diag_spec().expect("paper case study augments");
        assert_eq!(case.ecus().len(), 15);
        assert_eq!(diag.options.len(), 540);
    }

    #[test]
    fn tiny_exploration_runs() {
        let (_, _, res) =
            run_case_study_exploration(50, 1, 1).expect("paper case study augments");
        assert_eq!(res.evaluations, 50);
        assert!(!res.front.is_empty());
    }
}
