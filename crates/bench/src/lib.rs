//! Shared helpers of the experiment binaries and Criterion benches that
//! regenerate the paper's tables and figures.
//!
//! Every experiment is deterministic for fixed parameters; environment
//! variables scale the budgets:
//!
//! | variable | default | used by |
//! |---|---|---|
//! | `EEA_EVALS` | 10,000 | `fig5`, `fig6`, `headline` (paper: 100,000) |
//! | `EEA_SEED` | 2014 | exploration seed |
//! | `EEA_CUT_GATES` | 1,500 | `table1` CUT size |
//! | `EEA_PRP_MAX` | 16,384 | `table1` largest PRP count (paper: 500,000) |
//! | `EEA_THREADS` | auto | worker threads for evaluation (results are bit-identical at any count) |

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use eea_bist::paper_table1;
use eea_dse::{augment, explore, DiagSpec, DseConfig, DseResult, EeaError};
use eea_model::{paper_case_study, CaseStudy};

/// Reads a `usize` environment knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The paper's augmented case study: all 36 Table I profiles on all 15
/// ECUs.
///
/// # Errors
///
/// Propagates any [`EeaError`] from the augmentation (the paper case study
/// itself always augments cleanly).
pub fn paper_diag_spec() -> Result<(CaseStudy, DiagSpec), EeaError> {
    let case = paper_case_study();
    let diag = augment(&case, &paper_table1())?;
    Ok((case, diag))
}

/// Runs the case-study exploration with the standard experiment knobs.
///
/// `threads = 0` means one worker per available CPU (overridable via
/// `EEA_THREADS`); the result is bit-identical at any thread count.
pub fn run_case_study_exploration(
    evaluations: usize,
    seed: u64,
    threads: usize,
) -> Result<(CaseStudy, DiagSpec, DseResult), EeaError> {
    let (case, diag) = paper_diag_spec()?;
    let cfg = DseConfig {
        nsga2: eea_moea::Nsga2Config {
            population: 100.min(evaluations.max(2)),
            evaluations,
            seed,
            ..eea_moea::Nsga2Config::default()
        },
        threads,
    };
    let result = explore(&diag, &cfg, |evals, archive| {
        if evals % 2_000 < 100 {
            eprintln!("  {evals} evaluations, archive = {archive}");
        }
    });
    Ok((case, diag, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_parse() {
        std::env::remove_var("EEA_TEST_KNOB");
        assert_eq!(env_usize("EEA_TEST_KNOB", 7), 7);
        std::env::set_var("EEA_TEST_KNOB", "42");
        assert_eq!(env_usize("EEA_TEST_KNOB", 7), 42);
        assert_eq!(env_u64("EEA_TEST_KNOB", 7), 42);
        std::env::set_var("EEA_TEST_KNOB", "garbage");
        assert_eq!(env_usize("EEA_TEST_KNOB", 7), 7);
        std::env::remove_var("EEA_TEST_KNOB");
    }

    #[test]
    fn paper_spec_shape() {
        let (case, diag) = paper_diag_spec().expect("paper case study augments");
        assert_eq!(case.ecus().len(), 15);
        assert_eq!(diag.options.len(), 540);
    }

    #[test]
    fn tiny_exploration_runs() {
        let (_, _, res) =
            run_case_study_exploration(50, 1, 1).expect("paper case study augments");
        assert_eq!(res.evaluations, 50);
        assert!(!res.front.is_empty());
    }
}
