//! Campaign throughput of the fleet engine — vehicles simulated per
//! second, the quantity `BENCH_fleet.json` reports at full scale.
//!
//! One iteration = a complete 2,000-vehicle campaign (seeding, per-vehicle
//! timelines, gateway aggregation) over a reduced CUT. The blueprint set
//! mirrors `tests/fleet_determinism.rs`: one all-local implementation, one
//! gateway-streaming, one with a dead session, so the timeline exercises
//! every work-queue path. The thread sweep reuses the identical workload —
//! the engine's determinism contract makes the reports bit-identical, so
//! the sweep measures scheduling overhead only.

use criterion::{criterion_group, criterion_main, Criterion};
use eea_fleet::{
    Campaign, CampaignConfig, ChannelConfig, CutConfig, CutFamily, CutModel, EcuSessionPlan,
    TransportKind, VehicleBlueprint,
};
use eea_model::ResourceId;

const VEHICLES: u32 = 2_000;

fn blueprints(transport: TransportKind) -> Vec<VehicleBlueprint> {
    let plan = |ecu: usize, transfer_s: f64, upload_bw: f64| EcuSessionPlan {
        ecu: ResourceId::from_index(ecu),
        profile_id: 1,
        coverage: 0.99,
        session_s: 0.005,
        transfer_s,
        local_storage: transfer_s == 0.0,
        upload_bandwidth_bytes_per_s: upload_bw,
        family: CutFamily::Logic,
    };
    vec![
        VehicleBlueprint {
            implementation_index: 0,
            sessions: vec![plan(0, 0.0, 400.0), plan(1, 0.0, 150.0)],
            shutoff_budget_s: 900.0,
            transport,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 1,
            sessions: vec![plan(2, 1_500.0, 80.0)],
            shutoff_budget_s: 4_000.0,
            transport,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
        VehicleBlueprint {
            implementation_index: 2,
            sessions: vec![plan(3, f64::INFINITY, 0.0), plan(4, 300.0, 60.0)],
            shutoff_budget_s: 2_000.0,
            transport,
            channel: ChannelConfig::Clean,
            task_set: None,
        },
    ]
}

fn cut() -> CutModel {
    CutModel::build(CutConfig {
        gates: 100,
        patterns: 128,
        window: 16,
        ..CutConfig::default()
    })
    .expect("substrate builds")
}

fn campaign_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        vehicles: VEHICLES,
        defect_fraction: 0.2,
        seed: 0xF1EE7,
        threads,
        ..CampaignConfig::default()
    }
}

/// Serial campaign throughput: the baseline vehicles/s number.
fn bench_campaign_serial(c: &mut Criterion) {
    let cut = cut();
    let bp = blueprints(TransportKind::MirroredCan);
    c.bench_function(format!("fleet_campaign_{VEHICLES}_vehicles_serial"), |b| {
        b.iter(|| {
            Campaign::new(&cut, &bp, campaign_config(1))
                .expect("valid campaign")
                .run()
        })
    });
}

/// The same workload at 1/2/4/8 worker threads (reports stay
/// bit-identical; only wall-clock moves).
fn bench_campaign_thread_sweep(c: &mut Criterion) {
    let cut = cut();
    let bp = blueprints(TransportKind::MirroredCan);
    let mut group = c.benchmark_group("fleet_thread_sweep");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                Campaign::new(&cut, &bp, campaign_config(threads))
                    .expect("valid campaign")
                    .run()
            })
        });
    }
    group.finish();
}

/// Aggregation-only throughput at 1/2/4/8 diagnosis shards: the fleet is
/// simulated **once** (aggregation borrows [`eea_fleet::FleetShards`]), so
/// the group isolates the merge → diagnose → fold stages the sharded
/// gateway pipeline (DESIGN.md §10) parallelized. Reports stay
/// bit-identical across the shard sweep.
fn bench_aggregation_shard_sweep(c: &mut Criterion) {
    let cut = cut();
    let bp = blueprints(TransportKind::MirroredCan);
    let mut group = c.benchmark_group("fleet_aggregation");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let cfg = CampaignConfig {
            shards,
            ..campaign_config(0)
        };
        let campaign = Campaign::new(&cut, &bp, cfg).expect("valid campaign");
        let sim = campaign.simulate();
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| campaign.aggregate(&sim))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaign_serial, bench_campaign_thread_sweep, bench_aggregation_shard_sweep
}
criterion_main!(benches);
