//! Evaluation throughput of the exploration inner loop — the quantity
//! behind the paper's "100,000 implementations in roughly 29 minutes".
//!
//! One iteration = decode a genotype through the SAT solver + evaluate all
//! three objectives, on the full case study (36 profiles x 15 ECUs).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eea_bench::paper_diag_spec;
use eea_dse::DseProblem;
use eea_moea::{Problem, Rng};

fn bench_decode_evaluate(c: &mut Criterion) {
    let (_case, diag) = paper_diag_spec().expect("paper case study augments");
    let mut problem = DseProblem::new(&diag);
    let n = problem.genotype_len();
    let mut rng = Rng::new(0xD5E);

    c.bench_function("dse_decode_and_evaluate_full_case_study", |b| {
        b.iter_batched(
            || (0..n).map(|_| rng.unit()).collect::<Vec<f64>>(),
            |genotype| problem.evaluate(&genotype).expect("feasible"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_encode(c: &mut Criterion) {
    let (_case, diag) = paper_diag_spec().expect("paper case study augments");
    c.bench_function("dse_encode_full_case_study", |b| {
        b.iter(|| eea_dse::encode(&diag))
    });
}

/// Batched decode+evaluate at 1/2/4/8 worker threads, one EVAL_LANES-sized
/// batch per iteration (the NSGA-II offspring granularity). The lane scheme
/// keeps the objective vectors bit-identical across the sweep.
fn bench_thread_sweep(c: &mut Criterion) {
    let (_case, diag) = paper_diag_spec().expect("paper case study augments");
    let mut group = c.benchmark_group("dse_thread_sweep");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        let mut problem = DseProblem::with_threads(&diag, threads);
        let n = problem.genotype_len();
        let mut rng = Rng::new(0xD5E);
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter_batched(
                || {
                    (0..eea_dse::EVAL_LANES)
                        .map(|_| (0..n).map(|_| rng.unit()).collect::<Vec<f64>>())
                        .collect::<Vec<_>>()
                },
                |batch| problem.evaluate_batch(&batch),
                BatchSize::SmallInput,
            )
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_decode_evaluate, bench_encode, bench_thread_sweep
}
criterion_main!(benches);
