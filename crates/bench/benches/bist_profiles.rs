//! Cost of generating one Table I profile group (the LFSR grading plus
//! ATPG top-off pipeline of `eea-bist`).

use criterion::{criterion_group, criterion_main, Criterion};
use eea_bist::{generate_profiles, CoverageTarget, ProfileConfig};
use eea_netlist::{synthesize, SynthConfig};

fn bench_profile_generation(c: &mut Criterion) {
    let cut = synthesize(&SynthConfig {
        gates: 300,
        inputs: 16,
        dffs: 32,
        seed: 0xC07,
        ..SynthConfig::default()
    }).expect("synthesizes");

    let mut group = c.benchmark_group("bist_profile_generation");
    group.sample_size(10);
    for prps in [128u64, 1024] {
        group.bench_function(format!("one_group_{prps}_prps"), |b| {
            let cfg = ProfileConfig {
                prp_counts: vec![prps],
                targets: vec![CoverageTarget::Max, CoverageTarget::OfMax(0.95)],
                num_chains: 8,
                ..ProfileConfig::default()
            };
            b.iter(|| generate_profiles(&cut, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_profile_generation);
criterion_main!(benches);
