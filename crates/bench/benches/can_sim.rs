//! Throughput of the CAN substrate: event-driven bus simulation vs the
//! analytical response-time analysis, and the mirroring transform.

use criterion::{criterion_group, criterion_main, Criterion};
use eea_can::{analyze, mirror_messages, BusSim, CanId, Message, BUS_BITRATE_BPS};

fn schedule(n: usize) -> Vec<Message> {
    (0..n)
        .map(|i| {
            let id = CanId::new((0x100 + i * 8) as u16).expect("valid");
            let payload = 1 + (i % 8) as u8;
            let period = [5_000u64, 10_000, 20_000, 50_000][i % 4];
            Message::new(id, payload, period).expect("valid")
        })
        .collect()
}

fn bench_can(c: &mut Criterion) {
    let msgs = schedule(30);
    let mut group = c.benchmark_group("can");
    group.sample_size(20);

    group.bench_function("simulate_1s_30_messages", |b| {
        let sim = BusSim::new(BUS_BITRATE_BPS).expect("valid bitrate");
        b.iter(|| sim.run(&msgs, 1_000_000))
    });

    group.bench_function("rta_30_messages", |b| {
        b.iter(|| analyze(&msgs, BUS_BITRATE_BPS))
    });

    group.bench_function("mirror_8_messages", |b| {
        let under_test = schedule(8);
        b.iter(|| mirror_messages(&under_test, 0x400, &msgs[8..]).expect("mirrors"))
    });

    group.finish();
}

criterion_group!(benches, bench_can);
criterion_main!(benches);
