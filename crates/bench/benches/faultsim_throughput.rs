//! Ablation: bit-parallel PPSFP vs a naive serial (one pattern at a time)
//! fault simulation, plus the wide-word (512-bit block) vs classic u64
//! pattern-word comparison. The pattern-parallelism is what makes BIST
//! profile generation tractable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use eea_faultsim::{
    FaultSim, FaultUniverse, ParFaultSim, PatternBlock, WideFaultSim, WidePatternBlock,
};
use eea_netlist::{synthesize, SynthConfig};

fn random_block<const L: usize>(
    c: &eea_netlist::Circuit,
    rng: &mut u64,
    count: usize,
) -> WidePatternBlock<L> {
    let mut block = WidePatternBlock::<L>::zeroed(c, count);
    block.fill_words(|| {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *rng
    });
    block
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let circuit = synthesize(&SynthConfig {
        gates: 600,
        inputs: 24,
        dffs: 48,
        seed: 0xFA57,
        ..SynthConfig::default()
    }).expect("synthesizes");

    let mut group = c.benchmark_group("faultsim_64_patterns");
    group.sample_size(20);

    group.bench_function("bit_parallel_block", |b| {
        let mut sim = FaultSim::new(&circuit);
        let mut rng = 0x1234u64;
        b.iter(|| {
            let mut universe = FaultUniverse::collapsed(&circuit);
            let block = random_block(&circuit, &mut rng, 64);
            sim.detect_block(&block, &mut universe)
        })
    });

    group.bench_function("serial_single_patterns", |b| {
        let mut sim = FaultSim::new(&circuit);
        let mut rng = 0x1234u64;
        b.iter(|| {
            let mut universe = FaultUniverse::collapsed(&circuit);
            let mut total = 0;
            for _ in 0..64 {
                let block = random_block(&circuit, &mut rng, 1);
                total += sim.detect_block(&block, &mut universe);
            }
            total
        })
    });

    group.finish();
}

/// Worklist-parallel PPSFP at 1/2/4/8 worker threads. Detection results are
/// bit-identical across the sweep; only the wall clock moves (bounded by the
/// machine's core count).
fn bench_thread_sweep(c: &mut Criterion) {
    let circuit = synthesize(&SynthConfig {
        gates: 2_000,
        inputs: 32,
        dffs: 96,
        seed: 0xFA58,
        ..SynthConfig::default()
    }).expect("synthesizes");

    let mut group = c.benchmark_group("faultsim_thread_sweep");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            let mut sim = ParFaultSim::new(&circuit, threads);
            let mut rng = 0x5EEDu64;
            b.iter(|| {
                let mut universe = FaultUniverse::collapsed(&circuit);
                let block = random_block(&circuit, &mut rng, 64);
                sim.detect_block(&block, &mut universe)
            })
        });
    }

    group.finish();
}

/// PPSFP forward-evaluation bench on a c1355-sized circuit (ISCAS-85
/// c1355: ~1,355 equivalent gates, 41 inputs). Each wide-vs-narrow pair
/// pushes the same 512 patterns through the collapsed fault universe per
/// iteration — once as a single 8-lane block, once as eight classic
/// 64-pattern `u64` blocks — so the per-iteration wall-clock ratio is the
/// per-pattern speedup of the wide word.
///
/// Two workloads:
///
/// * `full_masks_*` — the simulate stage of BIST profile generation
///   (`detect_block_with_positions` semantics): every fault's complete
///   detection mask, no early exit. Every cone is walked to exhaustion,
///   so the wide word's per-gate amortization shows in full.
/// * `detect_*` — the adaptive coverage scan (`detect_block`): walks
///   truncate at the first detecting pattern and detected faults leave
///   the worklist. Most faults are caught within the first 64 patterns,
///   where both word widths do identical truncated work, so the wide
///   win is structurally smaller here (see EXPERIMENTS.md).
fn bench_c1355_forward_eval(c: &mut Criterion) {
    let circuit = synthesize(&SynthConfig {
        gates: 1_355,
        inputs: 41,
        dffs: 64,
        seed: 0xC1355,
        ..SynthConfig::default()
    })
    .expect("synthesizes");

    let mut group = c.benchmark_group("ppsfp_c1355");
    group.sample_size(10);

    group.bench_function("full_masks_512_patterns_wide8", |b| {
        let mut sim = FaultSim::new(&circuit);
        let universe = FaultUniverse::collapsed(&circuit);
        let mut rng = 0xC135_5EEDu64;
        let block = random_block(&circuit, &mut rng, PatternBlock::CAPACITY);
        sim.run_good(&block);
        b.iter(|| {
            let mut acc = 0u64;
            for fi in 0..universe.num_faults() {
                let mask = sim.detect_mask(universe.fault(fi), &block, false);
                acc = acc.wrapping_add(mask.lanes()[0]);
            }
            acc
        })
    });
    group.bench_function("full_masks_512_patterns_narrow_u64", |b| {
        let mut sim = WideFaultSim::<1>::new(&circuit);
        let universe = FaultUniverse::collapsed(&circuit);
        let mut rng = 0xC135_5EEDu64;
        let blocks: Vec<_> = (0..PatternBlock::CAPACITY / 64)
            .map(|_| random_block::<1>(&circuit, &mut rng, 64))
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            // The u64 path re-runs the good machine per 64-pattern block;
            // that is part of pushing 512 patterns through a narrow word.
            for block in &blocks {
                sim.run_good(block);
                for fi in 0..universe.num_faults() {
                    let mask = sim.detect_mask(universe.fault(fi), block, false);
                    acc = acc.wrapping_add(mask.lanes()[0]);
                }
            }
            acc
        })
    });

    // Universe collapse and pattern generation are identical on both
    // sides and independent of the word width, so they are built untimed
    // (`iter_batched`) — the timed region is pure fault simulation.
    group.bench_function("detect_512_patterns_wide8", |b| {
        let mut sim = FaultSim::new(&circuit);
        let mut rng = 0xC135_5EEDu64;
        b.iter_batched(
            || {
                let universe = FaultUniverse::collapsed(&circuit);
                let block = random_block(&circuit, &mut rng, PatternBlock::CAPACITY);
                (universe, block)
            },
            |(mut universe, block)| sim.detect_block(&block, &mut universe),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("detect_512_patterns_narrow_u64", |b| {
        let mut sim = WideFaultSim::<1>::new(&circuit);
        let mut rng = 0xC135_5EEDu64;
        b.iter_batched(
            || {
                let universe = FaultUniverse::collapsed(&circuit);
                let blocks: Vec<_> = (0..PatternBlock::CAPACITY / 64)
                    .map(|_| random_block::<1>(&circuit, &mut rng, 64))
                    .collect();
                (universe, blocks)
            },
            |(mut universe, blocks)| {
                let mut total = 0;
                for block in &blocks {
                    total += sim.detect_block(block, &mut universe);
                }
                total
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_vs_serial, bench_thread_sweep, bench_c1355_forward_eval);
criterion_main!(benches);
