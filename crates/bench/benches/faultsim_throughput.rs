//! Ablation: bit-parallel PPSFP vs a naive serial (one pattern at a time)
//! fault simulation. The 64-way parallelism is what makes BIST profile
//! generation tractable.

use criterion::{criterion_group, criterion_main, Criterion};
use eea_faultsim::{FaultSim, FaultUniverse, ParFaultSim, PatternBlock};
use eea_netlist::{synthesize, SynthConfig};

fn random_block(c: &eea_netlist::Circuit, rng: &mut u64, count: usize) -> PatternBlock {
    let mut block = PatternBlock::zeroed(c, count);
    for i in 0..c.pattern_width() {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        *block.word_mut(i) = *rng;
    }
    block
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let circuit = synthesize(&SynthConfig {
        gates: 600,
        inputs: 24,
        dffs: 48,
        seed: 0xFA57,
        ..SynthConfig::default()
    }).expect("synthesizes");

    let mut group = c.benchmark_group("faultsim_64_patterns");
    group.sample_size(20);

    group.bench_function("bit_parallel_block", |b| {
        let mut sim = FaultSim::new(&circuit);
        let mut rng = 0x1234u64;
        b.iter(|| {
            let mut universe = FaultUniverse::collapsed(&circuit);
            let block = random_block(&circuit, &mut rng, 64);
            sim.detect_block(&block, &mut universe)
        })
    });

    group.bench_function("serial_single_patterns", |b| {
        let mut sim = FaultSim::new(&circuit);
        let mut rng = 0x1234u64;
        b.iter(|| {
            let mut universe = FaultUniverse::collapsed(&circuit);
            let mut total = 0;
            for _ in 0..64 {
                let block = random_block(&circuit, &mut rng, 1);
                total += sim.detect_block(&block, &mut universe);
            }
            total
        })
    });

    group.finish();
}

/// Worklist-parallel PPSFP at 1/2/4/8 worker threads. Detection results are
/// bit-identical across the sweep; only the wall clock moves (bounded by the
/// machine's core count).
fn bench_thread_sweep(c: &mut Criterion) {
    let circuit = synthesize(&SynthConfig {
        gates: 2_000,
        inputs: 32,
        dffs: 96,
        seed: 0xFA58,
        ..SynthConfig::default()
    }).expect("synthesizes");

    let mut group = c.benchmark_group("faultsim_thread_sweep");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            let mut sim = ParFaultSim::new(&circuit, threads);
            let mut rng = 0x5EEDu64;
            b.iter(|| {
                let mut universe = FaultUniverse::collapsed(&circuit);
                let block = random_block(&circuit, &mut rng, 64);
                sim.detect_block(&block, &mut universe)
            })
        });
    }

    group.finish();
}

/// PPSFP forward-evaluation micro-bench on a c1355-sized circuit
/// (ISCAS-85 c1355: ~1,355 equivalent gates, 41 inputs). One iteration =
/// one 64-pattern `detect_block` over the collapsed fault universe. This
/// is the workload the per-simulator fan-in scratch buffer serves: before
/// the hoist, every wide-gate visit in the faulty-value propagation loop
/// allocated a fresh `Vec<u64>`; now all visits reuse one buffer owned by
/// the simulator.
fn bench_c1355_forward_eval(c: &mut Criterion) {
    let circuit = synthesize(&SynthConfig {
        gates: 1_355,
        inputs: 41,
        dffs: 64,
        seed: 0xC1355,
        ..SynthConfig::default()
    })
    .expect("synthesizes");

    let mut group = c.benchmark_group("ppsfp_c1355");
    group.sample_size(10);
    group.bench_function("detect_block_64_patterns", |b| {
        let mut sim = FaultSim::new(&circuit);
        let mut rng = 0xC135_5EEDu64;
        b.iter(|| {
            let mut universe = FaultUniverse::collapsed(&circuit);
            let block = random_block(&circuit, &mut rng, 64);
            sim.detect_block(&block, &mut universe)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_vs_serial, bench_thread_sweep, bench_c1355_forward_eval);
criterion_main!(benches);
