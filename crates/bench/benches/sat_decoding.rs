//! Ablation: SAT-decoding vs naive rejection sampling.
//!
//! SAT-decoding turns *every* genotype into a feasible implementation by
//! constraint propagation and conflict repair. The alternative — sampling
//! random bindings and rejecting infeasible ones — wastes almost all of
//! its draws on the case study's constraint structure (routing, (2h),
//! (3a)/(3b) couplings). This bench measures time *per feasible
//! implementation* for both strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use eea_bench::paper_diag_spec;
use eea_bist::paper_table1;
use eea_dse::{augment, DseProblem};
use eea_model::{paper_case_study, Implementation};
use eea_moea::{Problem, Rng};

/// Naive baseline: bind every task to a uniformly random mapping option,
/// route greedily along shortest paths, and check validity.
fn rejection_sample(
    diag: &eea_dse::DiagSpec,
    rng: &mut Rng,
) -> Option<Implementation> {
    let spec = &diag.spec;
    let mut x = Implementation::new();
    for t in spec.application.task_ids() {
        let opts = spec.mapping_options(t);
        if opts.is_empty() {
            continue;
        }
        let diagnostic = spec.application.task(t).kind.is_diagnostic();
        if diagnostic && rng.chance(0.5) {
            continue; // diagnostic tasks are optional
        }
        x.bind(t, opts[rng.below(opts.len())]);
    }
    // Greedy shortest-path routing.
    for m in spec.application.message_ids() {
        let msg = spec.application.message(m);
        let Some(src) = x.binding_of(msg.sender) else {
            continue;
        };
        let mut route = vec![src];
        for rec in &msg.receivers {
            if let Some(dst) = x.binding_of(*rec) {
                // BFS path src->dst.
                let mut prev = vec![None; spec.architecture.num_resources()];
                let mut queue = std::collections::VecDeque::from([src]);
                prev[src.index()] = Some(src);
                while let Some(r) = queue.pop_front() {
                    for &n in spec.architecture.neighbors(r) {
                        if prev[n.index()].is_none() {
                            prev[n.index()] = Some(r);
                            queue.push_back(n);
                        }
                    }
                }
                let mut cur = dst;
                while cur != src {
                    if !route.contains(&cur) {
                        route.push(cur);
                    }
                    cur = prev[cur.index()]?;
                }
            }
        }
        x.route(m, route);
    }
    spec.validate_implementation(&x).ok()?;
    // The encoding's extra constraints: (3a), (3b), (2h).
    for ecu in diag.bist_ecus() {
        if diag
            .options_of(ecu)
            .filter(|o| x.binding_of(o.test).is_some())
            .count()
            > 1
        {
            return None;
        }
    }
    for o in &diag.options {
        if x.binding_of(o.test).is_some() != x.binding_of(o.data).is_some() {
            return None;
        }
        for task in [o.test, o.data] {
            if let Some(r) = x.binding_of(task) {
                if !x
                    .tasks_on(r)
                    .any(|t| !spec.application.task(t).kind.is_diagnostic())
                {
                    return None;
                }
            }
        }
    }
    Some(x)
}

fn bench_decoding_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("feasible_implementation");
    group.sample_size(10);

    // SAT-decoding on the full case study.
    let (_case, diag) = paper_diag_spec().expect("paper case study augments");
    let mut problem = DseProblem::new(&diag);
    let n = problem.genotype_len();
    let mut rng = Rng::new(7);
    group.bench_function("sat_decoding_full", |b| {
        b.iter(|| {
            let genotype: Vec<f64> = (0..n).map(|_| rng.unit()).collect();
            problem.decode(&genotype).expect("always feasible")
        })
    });

    // Rejection sampling: time per *attempt*. The yield (attempts that
    // produce a feasible implementation) is reported below — it is so low
    // that benchmarking time-per-success would not terminate, which is the
    // ablation's whole point.
    let case = paper_case_study();
    let small = augment(&case, &paper_table1()[..2]).expect("gateway present");
    let mut rng2 = Rng::new(7);
    group.bench_function("rejection_sampling_one_attempt", |b| {
        b.iter(|| rejection_sample(&small, &mut rng2))
    });

    group.finish();

    // Report the rejection yield once.
    let mut rng3 = Rng::new(99);
    let tries = 5_000;
    let ok = (0..tries)
        .filter(|_| rejection_sample(&small, &mut rng3).is_some())
        .count();
    eprintln!(
        "rejection-sampling yield on the reduced 2-profile instance: {ok}/{tries}          ({}); SAT-decoding yield: 100 %",
        if ok == 0 {
            "< 0.02 %".to_string()
        } else {
            format!("{:.2} %", ok as f64 / tries as f64 * 100.0)
        }
    );
}

criterion_group!(benches, bench_decoding_strategies);
criterion_main!(benches);
