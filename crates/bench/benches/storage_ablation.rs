//! Ablation of the storage-placement design choice (the driver of Fig. 6):
//! gateway-only vs local-only vs free placement.
//!
//! Measures the decode+evaluate cost of each placement policy and reports
//! (once, on stderr) the objective deltas: gateway storage minimises cost
//! but inflates shut-off time by the Eq. (1) transfers; local storage
//! inverts the tradeoff.

use criterion::{criterion_group, criterion_main, Criterion};
use eea_bench::paper_diag_spec;
use eea_dse::{evaluate, DseProblem};
use eea_moea::Problem;

fn corner(problem: &DseProblem<'_>, idx: usize) -> Vec<f64> {
    problem.corner_genotypes()[idx].clone()
}

fn bench_storage_policies(c: &mut Criterion) {
    let (_case, diag) = paper_diag_spec().expect("paper case study augments");
    let mut problem = DseProblem::new(&diag);
    let _ = problem.genotype_len();

    // Report the tradeoff once.
    let labels = ["no_bist", "all_local", "all_gateway"];
    for (i, label) in labels.iter().enumerate() {
        let g = corner(&problem, i);
        let x = problem.decode(&g).expect("feasible corner");
        let (obj, mem) = evaluate(&diag, &x);
        eprintln!(
            "{label:>12}: cost={:.1} quality={:.1}% shutoff={:.3}s gateway={}B local={}B",
            obj.cost,
            obj.test_quality * 100.0,
            obj.shutoff_s,
            mem.gateway_bytes,
            mem.distributed_bytes
        );
    }

    let mut group = c.benchmark_group("storage_policy_decode_evaluate");
    group.sample_size(20);
    for (i, label) in labels.iter().enumerate() {
        let g = corner(&problem, i);
        group.bench_function(*label, |b| {
            b.iter(|| problem.evaluate(&g).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_storage_policies);
criterion_main!(benches);
