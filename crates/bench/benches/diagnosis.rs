//! Diagnosis engine: one-pass dictionary build vs serial per-fault
//! replay, and inverted-index lookup vs the linear Jaccard scan.
//!
//! Mirrors the `dict_speedup_vs_serial` / `diagnose_lookup_s` numbers
//! that `fleet_campaign` records in `BENCH_fleet.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use eea_bist::{Diagnoser, SessionTable, StumpsSession};
use eea_faultsim::FaultUniverse;
use eea_netlist::{synthesize, ScanChains, SynthConfig};

const LFSR_SEED: u64 = 0xACE1;
const WINDOW: u64 = 16;
const PATTERNS: u64 = 128;

fn substrate() -> (eea_netlist::Circuit, ScanChains) {
    let cut = synthesize(&SynthConfig {
        gates: 100,
        inputs: 16,
        dffs: 32,
        seed: 0xC07,
        ..SynthConfig::default()
    })
    .expect("synthesizes");
    let chains = ScanChains::balanced(&cut, 4).expect("at least one chain");
    (cut, chains)
}

fn bench_dict_build(c: &mut Criterion) {
    let (cut, chains) = substrate();
    let mut group = c.benchmark_group("diagnosis");
    group.sample_size(10);

    group.bench_function("dict_build_serial_replay", |b| {
        b.iter(|| SessionTable::build_serial_replay(&cut, &chains, LFSR_SEED, WINDOW, PATTERNS))
    });
    group.bench_function("dict_build_one_pass_1_thread", |b| {
        b.iter(|| SessionTable::build(&cut, &chains, LFSR_SEED, WINDOW, PATTERNS, 1))
    });
    group.bench_function("dict_build_one_pass_all_threads", |b| {
        b.iter(|| SessionTable::build(&cut, &chains, LFSR_SEED, WINDOW, PATTERNS, 0))
    });

    // Lookup: rank every session fail payload against the dictionary.
    let table = SessionTable::build(&cut, &chains, LFSR_SEED, WINDOW, PATTERNS, 0);
    let diagnoser = Diagnoser::from_table(&table);
    let session = StumpsSession::new(&cut, &chains, LFSR_SEED, WINDOW);
    let golden = session.run_golden(PATTERNS);
    let universe = FaultUniverse::collapsed(&cut);
    let payloads: Vec<_> = (0..universe.num_faults())
        .map(|i| session.run_with_fault(universe.fault(i), &golden))
        .collect();

    group.bench_function("lookup_linear", |b| {
        b.iter(|| {
            payloads
                .iter()
                .map(|p| diagnoser.diagnose_linear(p).len())
                .sum::<usize>()
        })
    });
    group.bench_function("lookup_indexed", |b| {
        b.iter(|| {
            payloads
                .iter()
                .map(|p| diagnoser.diagnose(p).len())
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_dict_build);
criterion_main!(benches);
