//! Multiple-input signature register — the response compactor (TRE) of the
//! STUMPS architecture.

use std::fmt;

/// Feedback polynomial of the 64-bit MISR (maximal-length Galois form).
const MISR_POLY: u64 = 0xD800_0000_0000_0000;

/// A 64-bit MISR.
///
/// Each clock cycle the register shifts and XORs in up to 64 parallel scan
/// chain outputs. The final state is the test *signature*; with a 64-bit
/// maximal polynomial the aliasing probability is about `2^-64`.
///
/// # Example
///
/// ```
/// use eea_bist::Misr;
///
/// let mut a = Misr::new();
/// let mut b = Misr::new();
/// a.absorb(0b1010);
/// b.absorb(0b1010);
/// assert_eq!(a.signature(), b.signature());
/// b.absorb(0b0001);
/// assert_ne!(a.signature(), b.signature());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Misr {
    state: u64,
}

impl Misr {
    /// Creates a MISR in the all-zero reset state.
    pub fn new() -> Self {
        Misr { state: 0 }
    }

    /// Shifts once and XORs in one 64-bit word of parallel scan outputs.
    #[inline]
    pub fn absorb(&mut self, inputs: u64) {
        let lsb = self.state & 1 == 1;
        self.state >>= 1;
        if lsb {
            self.state ^= MISR_POLY;
        }
        self.state ^= inputs;
    }

    /// Absorbs a slice of words (one per shift cycle).
    pub fn absorb_all(&mut self, words: &[u64]) {
        for &w in words {
            self.absorb(w);
        }
    }

    /// The current signature.
    #[inline]
    pub fn signature(&self) -> u64 {
        self.state
    }

    /// Resets to the all-zero state.
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

impl Default for Misr {
    fn default() -> Self {
        Misr::new()
    }
}

impl fmt::Display for Misr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "misr({:#018x})", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Misr::new();
        let mut b = Misr::new();
        for w in [1u64, 99, 0xFFFF_FFFF, 0] {
            a.absorb(w);
            b.absorb(w);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn order_sensitive() {
        let mut a = Misr::new();
        a.absorb(1);
        a.absorb(2);
        let mut b = Misr::new();
        b.absorb(2);
        b.absorb(1);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn single_bit_difference_changes_signature() {
        // Error-detection smoke test over many positions.
        for pos in 0..64 {
            let mut good = Misr::new();
            let mut bad = Misr::new();
            for i in 0..100u64 {
                let w = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                good.absorb(w);
                bad.absorb(if i == 50 { w ^ (1 << pos) } else { w });
            }
            assert_ne!(good.signature(), bad.signature(), "aliased at bit {pos}");
        }
    }

    #[test]
    fn reset_restores_zero() {
        let mut m = Misr::new();
        m.absorb(42);
        m.reset();
        assert_eq!(m.signature(), 0);
        assert_eq!(m, Misr::default());
    }

    #[test]
    fn absorb_all_equals_loop() {
        let words = [7u64, 8, 9, 1 << 63];
        let mut a = Misr::new();
        a.absorb_all(&words);
        let mut b = Misr::new();
        for &w in &words {
            b.absorb(w);
        }
        assert_eq!(a.signature(), b.signature());
    }
}
