//! Behavioural STUMPS session simulation.
//!
//! A session shifts LFSR-generated (and optionally deterministic) patterns
//! through the scan chains, captures the combinational response, and
//! compacts scan-out streams into a MISR. Every `window` patterns the
//! intermediate signature is compared against the expected *response data*
//! and the MISR is reset — the *strong windows* scheme of the
//! diagnosis-oriented STUMPS extension the paper builds on (\[9\],
//! \[10\]): with per-window signatures, the set of failing windows
//! fingerprints the fault instead of merely flagging the first corruption.

use eea_faultsim::{BitBlock, Fault, FaultSim, GoodSim, PatternBlock, DEFAULT_LANES};
use eea_netlist::{Circuit, ScanChains};

use crate::fail::FailData;
use crate::lfsr::Lfsr;
use crate::misr::Misr;

/// Fills a pattern block from the LFSR bit stream, mimicking parallel shift
/// into all scan chains (one LFSR bit per primary input and scan cell, in
/// chain order). Shared by [`StumpsSession`] and the profile generator so
/// both consume the identical TPG stream.
pub fn lfsr_pattern_block(
    circuit: &Circuit,
    chains: &ScanChains,
    lfsr: &mut Lfsr,
    count: usize,
) -> PatternBlock {
    let mut block = PatternBlock::zeroed(circuit, count);
    let n_pi = circuit.num_inputs();
    for j in 0..count {
        // Primary inputs first.
        for i in 0..n_pi {
            block.set(i, j, lfsr.next_bit());
        }
        // Scan cells, in chain order (chain-parallel shift). The balanced
        // partition is round-robin, so dff_index = pos * chains + chain.
        for ci in 0..chains.num_chains() {
            for pos in 0..chains.chain(ci).len() {
                let dff_index = pos * chains.num_chains() + ci;
                if dff_index < circuit.num_dffs() {
                    block.set(n_pi + dff_index, j, lfsr.next_bit());
                }
            }
        }
    }
    block
}

/// Outcome of a [`StumpsSession`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResult {
    /// Intermediate signatures, one per window.
    pub signatures: Vec<u64>,
    /// Final signature over the complete session.
    pub final_signature: u64,
    /// Number of patterns applied.
    pub patterns: u64,
}

/// A STUMPS session configuration bound to a circuit and scan architecture.
///
/// # Example
///
/// ```
/// use eea_netlist::{synthesize, SynthConfig, ScanChains};
/// use eea_bist::StumpsSession;
///
/// let c = synthesize(&SynthConfig { gates: 120, inputs: 8, dffs: 16, seed: 3, ..SynthConfig::default() }).expect("synthesizes");
/// let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
/// let session = StumpsSession::new(&c, &chains, 0xACE1, 16);
/// let golden = session.run_golden(64);
/// assert_eq!(golden.signatures.len(), 4);
/// ```
#[derive(Debug)]
pub struct StumpsSession<'c> {
    circuit: &'c Circuit,
    chains: &'c ScanChains,
    lfsr_seed: u64,
    /// Patterns per intermediate-signature window.
    window: u64,
}

impl<'c> StumpsSession<'c> {
    /// Creates a session. `window` is the number of patterns between
    /// intermediate signatures.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(circuit: &'c Circuit, chains: &'c ScanChains, lfsr_seed: u64, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        StumpsSession {
            circuit,
            chains,
            lfsr_seed,
            window,
        }
    }

    /// Generates the next pattern block (up to [`PatternBlock::CAPACITY`]
    /// patterns) from the LFSR stream.
    fn next_block(&self, lfsr: &mut Lfsr, count: usize) -> PatternBlock {
        lfsr_pattern_block(self.circuit, self.chains, lfsr, count)
    }

    fn compact_response(&self, misr: &mut Misr, sim: &GoodSim<'_>, block: &PatternBlock, j: usize) {
        // One MISR absorption per pattern: pack the response bits of pattern
        // j into words of 64 and absorb them (behavioural abstraction of
        // per-shift-cycle compaction).
        let r = sim.response(block);
        let mut word = 0u64;
        let mut k = 0;
        for i in 0..r.width() {
            if r.get(i, j) {
                word |= 1 << k;
            }
            k += 1;
            if k == 64 {
                misr.absorb(word);
                word = 0;
                k = 0;
            }
        }
        if k > 0 {
            misr.absorb(word);
        }
    }

    /// Runs the fault-free session for `patterns` patterns, producing the
    /// expected *response data* (intermediate signatures).
    pub fn run_golden(&self, patterns: u64) -> SessionResult {
        let mut lfsr = Lfsr::new32(self.lfsr_seed);
        let mut sim = GoodSim::new(self.circuit);
        let mut misr = Misr::new();
        let mut signatures = Vec::new();
        let mut done = 0u64;
        while done < patterns {
            let count = ((patterns - done).min(PatternBlock::CAPACITY as u64)) as usize;
            let block = self.next_block(&mut lfsr, count);
            sim.run(&block);
            for j in 0..count {
                self.compact_response(&mut misr, &sim, &block, j);
                done += 1;
                if done.is_multiple_of(self.window) {
                    signatures.push(misr.signature());
                    misr.reset();
                }
            }
        }
        // With per-window resets the running MISR is zero at an exact
        // window boundary; the final signature is then the last window's.
        let final_signature = match signatures.last() {
            Some(&last) if done.is_multiple_of(self.window) => last,
            _ => misr.signature(),
        };
        SessionResult {
            final_signature,
            signatures,
            patterns,
        }
    }

    /// Runs the session with `fault` injected and compares against
    /// `golden`, returning the collected fail data.
    ///
    /// If `golden` stems from a session with a different window size (so
    /// it holds fewer signatures than this run produces), the surplus
    /// windows are recorded as failing rather than panicking.
    pub fn run_with_fault(&self, fault: Fault, golden: &SessionResult) -> FailData {
        let patterns = golden.patterns;
        let mut lfsr = Lfsr::new32(self.lfsr_seed);
        let mut fsim = FaultSim::new(self.circuit);
        let mut misr = Misr::new();
        let mut fail = FailData::new();
        let mut done = 0u64;
        let mut window_idx = 0u32;
        while done < patterns {
            let count = ((patterns - done).min(PatternBlock::CAPACITY as u64)) as usize;
            let block = self.next_block(&mut lfsr, count);
            fsim.run_good(&block);
            let detect = fsim.detect_mask(fault, &block, false);
            for j in 0..count {
                // The faulty response differs from the good response exactly
                // in the detected patterns; flip one response bit to model
                // the corrupted capture (behavioural abstraction — the MISR
                // diverges permanently afterwards, as in reality).
                self.compact_response(&mut misr, fsim.good_sim(), &block, j);
                if detect.bit(j) {
                    misr.absorb(1); // corrupt: extra error word
                }
                done += 1;
                if done.is_multiple_of(self.window) {
                    let sig = misr.signature();
                    // A golden result from a mismatched window config has no
                    // expectation for this window — count that as failing.
                    match golden.signatures.get(window_idx as usize) {
                        Some(&expected) if sig == expected => {}
                        _ => fail.push(window_idx, sig),
                    }
                    misr.reset();
                    window_idx += 1;
                }
            }
        }
        fail
    }
}

/// An in-flight STUMPS session that can be paused and resumed — the
/// session-resume hook behind the fleet campaign engine (`eea-fleet`).
///
/// In the field a BIST session runs inside a vehicle's *shut-off windows*
/// and rarely fits into one: the paper's Eq. (5) budgets the extra awake
/// time per shut-off, so a long session must stop at the window's end and
/// continue in the next one. Because every pattern of a full-scan STUMPS
/// session is self-contained (the LFSR stream, the scan load, the capture
/// and the MISR absorption are all per-pattern), the session state that has
/// to survive a pause is tiny: LFSR state, running MISR, pattern count and
/// window index. [`advance`](Self::advance) applies any number of patterns
/// at a time and the result is **bit-identical** to an uninterrupted
/// [`StumpsSession::run_golden`] / [`StumpsSession::run_with_fault`] run,
/// regardless of how the session is chopped up.
///
/// # Example
///
/// ```
/// use eea_netlist::{synthesize, SynthConfig, ScanChains};
/// use eea_bist::StumpsSession;
///
/// let c = synthesize(&SynthConfig { gates: 120, inputs: 8, dffs: 16, seed: 3, ..SynthConfig::default() }).expect("synthesizes");
/// let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
/// let session = StumpsSession::new(&c, &chains, 0xACE1, 16);
///
/// // Run 64 patterns split across three shut-off windows.
/// let mut run = session.resume_golden(64);
/// run.advance(10);
/// run.advance(37);
/// run.advance(u64::MAX); // rest of the session
/// assert!(run.is_complete());
/// assert_eq!(run.into_golden(), session.run_golden(64));
/// ```
#[derive(Debug)]
pub struct ResumableRun<'s, 'c> {
    session: &'s StumpsSession<'c>,
    target: u64,
    fault: Option<Fault>,
    golden: Option<&'s SessionResult>,
    lfsr: Lfsr,
    fsim: FaultSim<'c>,
    misr: Misr,
    signatures: Vec<u64>,
    fail: FailData,
    done: u64,
    window_idx: u32,
}

impl<'s, 'c> ResumableRun<'s, 'c> {
    fn new(
        session: &'s StumpsSession<'c>,
        target: u64,
        fault: Option<Fault>,
        golden: Option<&'s SessionResult>,
    ) -> Self {
        ResumableRun {
            session,
            target,
            fault,
            golden,
            lfsr: Lfsr::new32(session.lfsr_seed),
            fsim: FaultSim::new(session.circuit),
            misr: Misr::new(),
            signatures: Vec::new(),
            fail: FailData::new(),
            done: 0,
            window_idx: 0,
        }
    }

    /// Applies up to `patterns` further patterns (capped by the session
    /// target) and returns how many were actually applied.
    pub fn advance(&mut self, patterns: u64) -> u64 {
        let todo = patterns.min(self.target - self.done);
        let mut applied = 0u64;
        while applied < todo {
            let count = ((todo - applied).min(PatternBlock::CAPACITY as u64)) as usize;
            let block = self
                .session
                .next_block(&mut self.lfsr, count);
            self.fsim.run_good(&block);
            let detect = match self.fault {
                Some(fault) => self.fsim.detect_mask(fault, &block, false),
                None => BitBlock::<DEFAULT_LANES>::ZEROS,
            };
            for j in 0..count {
                self.session
                    .compact_response(&mut self.misr, self.fsim.good_sim(), &block, j);
                if detect.bit(j) {
                    self.misr.absorb(1); // corrupt: extra error word
                }
                self.done += 1;
                applied += 1;
                if self.done.is_multiple_of(self.session.window) {
                    let sig = self.misr.signature();
                    match self.golden {
                        // Golden mode: record the expected response data.
                        None => self.signatures.push(sig),
                        // Faulty mode: compare against the expectation; a
                        // golden result from a mismatched window config has
                        // no expectation for this window — count it failing.
                        Some(golden) => match golden.signatures.get(self.window_idx as usize) {
                            Some(&expected) if sig == expected => {}
                            _ => self.fail.push(self.window_idx, sig),
                        },
                    }
                    self.misr.reset();
                    self.window_idx += 1;
                }
            }
        }
        applied
    }

    /// Patterns applied so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Patterns still to apply.
    pub fn remaining(&self) -> u64 {
        self.target - self.done
    }

    /// Whether the session target has been reached.
    pub fn is_complete(&self) -> bool {
        self.done == self.target
    }

    /// Signature windows completed so far.
    pub fn windows_completed(&self) -> u32 {
        self.window_idx
    }

    /// The fail data observed **so far** — for a paused faulty run this is
    /// the partial fail memory after [`windows_completed`]
    /// (Self::windows_completed) windows; once [`is_complete`]
    /// (Self::is_complete) it equals [`StumpsSession::run_with_fault`].
    pub fn fail_data(&self) -> &FailData {
        &self.fail
    }

    /// Consumes the run and returns its fail data (partial if the session
    /// was not driven to completion).
    pub fn into_fail_data(self) -> FailData {
        self.fail
    }

    /// Finishes a golden-mode run into a [`SessionResult`] over the
    /// patterns applied so far. For a completed run this is bit-identical
    /// to [`StumpsSession::run_golden`] of the same length.
    pub fn into_golden(self) -> SessionResult {
        let final_signature = match self.signatures.last() {
            Some(&last) if self.done.is_multiple_of(self.session.window) => last,
            _ => self.misr.signature(),
        };
        SessionResult {
            final_signature,
            signatures: self.signatures,
            patterns: self.done,
        }
    }
}

impl<'c> StumpsSession<'c> {
    /// Starts a resumable fault-free run of `patterns` patterns; drive it
    /// with [`ResumableRun::advance`].
    pub fn resume_golden(&self, patterns: u64) -> ResumableRun<'_, 'c> {
        ResumableRun::new(self, patterns, None, None)
    }

    /// Starts a resumable faulty run compared against `golden`; drive it
    /// with [`ResumableRun::advance`]. The partial
    /// [`fail_data`](ResumableRun::fail_data) after each pause is exactly
    /// what the ECU's fail memory holds at that point of the session.
    pub fn resume_with_fault<'s>(
        &'s self,
        fault: Fault,
        golden: &'s SessionResult,
    ) -> ResumableRun<'s, 'c> {
        ResumableRun::new(self, golden.patterns, Some(fault), Some(golden))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_faultsim::FaultUniverse;
    use eea_netlist::{synthesize, ScanChains, SynthConfig};

    fn setup() -> (eea_netlist::Circuit, ScanChains) {
        let c = synthesize(&SynthConfig {
            gates: 120,
            inputs: 8,
            dffs: 16,
            seed: 3,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
        (c, chains)
    }

    #[test]
    fn golden_is_deterministic() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 16);
        let a = s.run_golden(128);
        let b = s.run_golden(128);
        assert_eq!(a, b);
        assert_eq!(a.signatures.len(), 8);
    }

    #[test]
    fn different_seed_different_signature() {
        let (c, chains) = setup();
        let a = StumpsSession::new(&c, &chains, 0xACE1, 16).run_golden(64);
        let b = StumpsSession::new(&c, &chains, 0xBEEF, 16).run_golden(64);
        assert_ne!(a.final_signature, b.final_signature);
    }

    #[test]
    fn fault_free_run_passes() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 16);
        let golden = s.run_golden(128);
        // Injecting a fault that 128 patterns do not detect yields PASS;
        // easiest fault-free check: compare golden against itself via a
        // detectable fault's *absence*: run with an undetected fault.
        let universe = FaultUniverse::collapsed(&c);
        let mut fsim = eea_faultsim::FaultSim::new(&c);
        // Find a fault detected within the window to assert FAIL below, and
        // sanity-check window accounting.
        let mut lfsr = Lfsr::new32(0xACE1);
        let block = s.next_block(&mut lfsr, 64);
        fsim.run_good(&block);
        let mut detected_fault = None;
        for fi in 0..universe.num_faults() {
            if fsim.detect_mask(universe.fault(fi), &block, true).any() {
                detected_fault = Some(universe.fault(fi));
                break;
            }
        }
        let fault = detected_fault.expect("some fault detected in 64 patterns");
        let fail = s.run_with_fault(fault, &golden);
        assert!(!fail.is_pass(), "detected fault must corrupt a signature");
        // The first failing window index is within range.
        assert!((fail.entries()[0].window as usize) < golden.signatures.len());
    }

    #[test]
    fn resumable_golden_matches_uninterrupted() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 16);
        let reference = s.run_golden(200);
        // Chop the same session into awkward, uneven resume chunks.
        let mut run = s.resume_golden(200);
        for chunk in [1u64, 7, 64, 13, 3, 100, 64] {
            run.advance(chunk);
        }
        assert!(run.is_complete());
        assert_eq!(run.remaining(), 0);
        assert_eq!(run.into_golden(), reference);
    }

    #[test]
    fn resumable_faulty_matches_uninterrupted() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 8);
        let golden = s.run_golden(192);
        let universe = FaultUniverse::collapsed(&c);
        let mut checked = 0;
        for fi in (0..universe.num_faults()).step_by(9) {
            let fault = universe.fault(fi);
            let reference = s.run_with_fault(fault, &golden);
            let mut run = s.resume_with_fault(fault, &golden);
            while !run.is_complete() {
                // 5-pattern shut-off windows: worst-case fragmentation.
                run.advance(5);
            }
            assert_eq!(run.fail_data(), &reference);
            assert_eq!(run.into_fail_data(), reference);
            checked += 1;
        }
        assert!(checked > 5);
    }

    #[test]
    fn partial_fail_data_is_window_prefix() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 8);
        let golden = s.run_golden(192);
        let universe = FaultUniverse::collapsed(&c);
        // Find a fault whose full session fails at least twice.
        let fault = (0..universe.num_faults())
            .map(|fi| universe.fault(fi))
            .find(|&f| s.run_with_fault(f, &golden).entries().len() >= 2)
            .expect("some fault fails two windows");
        let full = s.run_with_fault(fault, &golden);
        // Pause mid-session: the partial fail data is exactly the prefix of
        // the full one restricted to completed windows.
        let mut run = s.resume_with_fault(fault, &golden);
        run.advance(100);
        let windows_done = run.windows_completed();
        let expected: Vec<_> = full
            .entries()
            .iter()
            .filter(|e| e.window < windows_done)
            .copied()
            .collect();
        assert_eq!(run.fail_data().entries(), expected.as_slice());
        // Resuming to completion recovers the full fail data.
        run.advance(u64::MAX);
        assert_eq!(run.into_fail_data(), full);
    }

    #[test]
    fn zero_advance_is_a_no_op() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 1, 4);
        let mut run = s.resume_golden(32);
        assert_eq!(run.advance(0), 0);
        assert_eq!(run.done(), 0);
        assert_eq!(run.advance(u64::MAX), 32);
        assert_eq!(run.windows_completed(), 8);
    }

    #[test]
    fn window_count_matches() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 7, 10);
        let golden = s.run_golden(95);
        assert_eq!(golden.signatures.len(), 9); // floor(95/10)
        assert_eq!(golden.patterns, 95);
    }
}
