//! Behavioural STUMPS session simulation.
//!
//! A session shifts LFSR-generated (and optionally deterministic) patterns
//! through the scan chains, captures the combinational response, and
//! compacts scan-out streams into a MISR. Every `window` patterns the
//! intermediate signature is compared against the expected *response data*
//! and the MISR is reset — the *strong windows* scheme of the
//! diagnosis-oriented STUMPS extension the paper builds on (\[9\],
//! \[10\]): with per-window signatures, the set of failing windows
//! fingerprints the fault instead of merely flagging the first corruption.

use eea_faultsim::{Fault, FaultSim, GoodSim, PatternBlock};
use eea_netlist::{Circuit, ScanChains};

use crate::fail::FailData;
use crate::lfsr::Lfsr;
use crate::misr::Misr;

/// Fills a pattern block from the LFSR bit stream, mimicking parallel shift
/// into all scan chains (one LFSR bit per primary input and scan cell, in
/// chain order). Shared by [`StumpsSession`] and the profile generator so
/// both consume the identical TPG stream.
pub fn lfsr_pattern_block(
    circuit: &Circuit,
    chains: &ScanChains,
    lfsr: &mut Lfsr,
    count: usize,
) -> PatternBlock {
    let mut block = PatternBlock::zeroed(circuit, count);
    let n_pi = circuit.num_inputs();
    for j in 0..count {
        // Primary inputs first.
        for i in 0..n_pi {
            block.set(i, j, lfsr.next_bit());
        }
        // Scan cells, in chain order (chain-parallel shift). The balanced
        // partition is round-robin, so dff_index = pos * chains + chain.
        for ci in 0..chains.num_chains() {
            for pos in 0..chains.chain(ci).len() {
                let dff_index = pos * chains.num_chains() + ci;
                if dff_index < circuit.num_dffs() {
                    block.set(n_pi + dff_index, j, lfsr.next_bit());
                }
            }
        }
    }
    block
}

/// Outcome of a [`StumpsSession`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionResult {
    /// Intermediate signatures, one per window.
    pub signatures: Vec<u64>,
    /// Final signature over the complete session.
    pub final_signature: u64,
    /// Number of patterns applied.
    pub patterns: u64,
}

/// A STUMPS session configuration bound to a circuit and scan architecture.
///
/// # Example
///
/// ```
/// use eea_netlist::{synthesize, SynthConfig, ScanChains};
/// use eea_bist::StumpsSession;
///
/// let c = synthesize(&SynthConfig { gates: 120, inputs: 8, dffs: 16, seed: 3, ..SynthConfig::default() }).expect("synthesizes");
/// let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
/// let session = StumpsSession::new(&c, &chains, 0xACE1, 16);
/// let golden = session.run_golden(64);
/// assert_eq!(golden.signatures.len(), 4);
/// ```
#[derive(Debug)]
pub struct StumpsSession<'c> {
    circuit: &'c Circuit,
    chains: &'c ScanChains,
    lfsr_seed: u64,
    /// Patterns per intermediate-signature window.
    window: u64,
}

impl<'c> StumpsSession<'c> {
    /// Creates a session. `window` is the number of patterns between
    /// intermediate signatures.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(circuit: &'c Circuit, chains: &'c ScanChains, lfsr_seed: u64, window: u64) -> Self {
        assert!(window > 0, "window must be positive");
        StumpsSession {
            circuit,
            chains,
            lfsr_seed,
            window,
        }
    }

    /// Generates the next 64-pattern block from the LFSR stream.
    fn next_block(&self, lfsr: &mut Lfsr, count: usize) -> PatternBlock {
        lfsr_pattern_block(self.circuit, self.chains, lfsr, count)
    }

    fn compact_response(&self, misr: &mut Misr, sim: &GoodSim<'_>, block: &PatternBlock, j: usize) {
        // One MISR absorption per pattern: pack the response bits of pattern
        // j into words of 64 and absorb them (behavioural abstraction of
        // per-shift-cycle compaction).
        let r = sim.response(block);
        let mut word = 0u64;
        let mut k = 0;
        for i in 0..r.width() {
            if (r.word(i) >> j) & 1 == 1 {
                word |= 1 << k;
            }
            k += 1;
            if k == 64 {
                misr.absorb(word);
                word = 0;
                k = 0;
            }
        }
        if k > 0 {
            misr.absorb(word);
        }
    }

    /// Runs the fault-free session for `patterns` patterns, producing the
    /// expected *response data* (intermediate signatures).
    pub fn run_golden(&self, patterns: u64) -> SessionResult {
        let mut lfsr = Lfsr::new32(self.lfsr_seed);
        let mut sim = GoodSim::new(self.circuit);
        let mut misr = Misr::new();
        let mut signatures = Vec::new();
        let mut done = 0u64;
        while done < patterns {
            let count = ((patterns - done).min(64)) as usize;
            let block = self.next_block(&mut lfsr, count);
            sim.run(&block);
            for j in 0..count {
                self.compact_response(&mut misr, &sim, &block, j);
                done += 1;
                if done.is_multiple_of(self.window) {
                    signatures.push(misr.signature());
                    misr.reset();
                }
            }
        }
        // With per-window resets the running MISR is zero at an exact
        // window boundary; the final signature is then the last window's.
        let final_signature = match signatures.last() {
            Some(&last) if done.is_multiple_of(self.window) => last,
            _ => misr.signature(),
        };
        SessionResult {
            final_signature,
            signatures,
            patterns,
        }
    }

    /// Runs the session with `fault` injected and compares against
    /// `golden`, returning the collected fail data.
    ///
    /// If `golden` stems from a session with a different window size (so
    /// it holds fewer signatures than this run produces), the surplus
    /// windows are recorded as failing rather than panicking.
    pub fn run_with_fault(&self, fault: Fault, golden: &SessionResult) -> FailData {
        let patterns = golden.patterns;
        let mut lfsr = Lfsr::new32(self.lfsr_seed);
        let mut fsim = FaultSim::new(self.circuit);
        let mut misr = Misr::new();
        let mut fail = FailData::new();
        let mut done = 0u64;
        let mut window_idx = 0u32;
        while done < patterns {
            let count = ((patterns - done).min(64)) as usize;
            let block = self.next_block(&mut lfsr, count);
            fsim.run_good(&block);
            let detect = fsim.detect_mask(fault, &block, false);
            for j in 0..count {
                // The faulty response differs from the good response exactly
                // in the detected patterns; flip one response bit to model
                // the corrupted capture (behavioural abstraction — the MISR
                // diverges permanently afterwards, as in reality).
                self.compact_response(&mut misr, fsim.good_sim(), &block, j);
                if (detect >> j) & 1 == 1 {
                    misr.absorb(1); // corrupt: extra error word
                }
                done += 1;
                if done.is_multiple_of(self.window) {
                    let sig = misr.signature();
                    // A golden result from a mismatched window config has no
                    // expectation for this window — count that as failing.
                    match golden.signatures.get(window_idx as usize) {
                        Some(&expected) if sig == expected => {}
                        _ => fail.push(window_idx, sig),
                    }
                    misr.reset();
                    window_idx += 1;
                }
            }
        }
        fail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_faultsim::FaultUniverse;
    use eea_netlist::{synthesize, ScanChains, SynthConfig};

    fn setup() -> (eea_netlist::Circuit, ScanChains) {
        let c = synthesize(&SynthConfig {
            gates: 120,
            inputs: 8,
            dffs: 16,
            seed: 3,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
        (c, chains)
    }

    #[test]
    fn golden_is_deterministic() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 16);
        let a = s.run_golden(128);
        let b = s.run_golden(128);
        assert_eq!(a, b);
        assert_eq!(a.signatures.len(), 8);
    }

    #[test]
    fn different_seed_different_signature() {
        let (c, chains) = setup();
        let a = StumpsSession::new(&c, &chains, 0xACE1, 16).run_golden(64);
        let b = StumpsSession::new(&c, &chains, 0xBEEF, 16).run_golden(64);
        assert_ne!(a.final_signature, b.final_signature);
    }

    #[test]
    fn fault_free_run_passes() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 0xACE1, 16);
        let golden = s.run_golden(128);
        // Injecting a fault that 128 patterns do not detect yields PASS;
        // easiest fault-free check: compare golden against itself via a
        // detectable fault's *absence*: run with an undetected fault.
        let universe = FaultUniverse::collapsed(&c);
        let mut fsim = eea_faultsim::FaultSim::new(&c);
        // Find a fault detected within the window to assert FAIL below, and
        // sanity-check window accounting.
        let mut lfsr = Lfsr::new32(0xACE1);
        let block = s.next_block(&mut lfsr, 64);
        fsim.run_good(&block);
        let mut detected_fault = None;
        for fi in 0..universe.num_faults() {
            if fsim.detect_mask(universe.fault(fi), &block, true) != 0 {
                detected_fault = Some(universe.fault(fi));
                break;
            }
        }
        let fault = detected_fault.expect("some fault detected in 64 patterns");
        let fail = s.run_with_fault(fault, &golden);
        assert!(!fail.is_pass(), "detected fault must corrupt a signature");
        // The first failing window index is within range.
        assert!((fail.entries()[0].window as usize) < golden.signatures.len());
    }

    #[test]
    fn window_count_matches() {
        let (c, chains) = setup();
        let s = StumpsSession::new(&c, &chains, 7, 10);
        let golden = s.run_golden(95);
        assert_eq!(golden.signatures.len(), 9); // floor(95/10)
        assert_eq!(golden.patterns, 95);
    }
}
