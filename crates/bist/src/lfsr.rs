//! Galois linear-feedback shift registers — the pseudo-random TPG of the
//! STUMPS architecture.

use std::error::Error;
use std::fmt;

/// Error for LFSR widths without a tabulated maximal-length polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedLfsrWidthError(pub u32);

impl fmt::Display for UnsupportedLfsrWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported LFSR width {} (supported: 8, 16, 24, 32, 64)",
            self.0
        )
    }
}

impl Error for UnsupportedLfsrWidthError {}

/// Maximal-length feedback polynomials (Galois form) for supported widths.
/// Each entry `(width, mask)` yields a period of `2^width - 1`.
const POLYS: &[(u32, u64)] = &[
    (8, 0xB8),
    (16, 0xB400),
    (24, 0xE1_0000),
    (32, 0x8020_0003),
    (64, 0xD800_0000_0000_0000),
];

/// A Galois LFSR of a supported width (8, 16, 24, 32 or 64 bits).
///
/// # Example
///
/// ```
/// use eea_bist::Lfsr;
///
/// let mut l = Lfsr::new(16, 0xACE1).expect("supported width");
/// let first: Vec<bool> = (0..8).map(|_| l.next_bit()).collect();
/// let mut l2 = Lfsr::new(16, 0xACE1).expect("supported width");
/// let again: Vec<bool> = (0..8).map(|_| l2.next_bit()).collect();
/// assert_eq!(first, again); // deterministic per seed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
    mask: u64,
    width_mask: u64,
}

impl Lfsr {
    /// Creates an LFSR of `width` bits seeded with `seed` (the zero state is
    /// replaced by all-ones, since zero is the lock-up state).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedLfsrWidthError`] if `width` is not one of 8,
    /// 16, 24, 32, 64.
    pub fn new(width: u32, seed: u64) -> Result<Self, UnsupportedLfsrWidthError> {
        let &(_, mask) = POLYS
            .iter()
            .find(|&&(w, _)| w == width)
            .ok_or(UnsupportedLfsrWidthError(width))?;
        let width_mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        Ok(Self::from_poly(seed, mask, width_mask))
    }

    /// Infallible 32-bit constructor — the width the STUMPS pattern
    /// generator uses throughout this crate.
    pub fn new32(seed: u64) -> Self {
        // POLYS[3] = (32, 0x8020_0003); inlined so the lookup cannot fail.
        Self::from_poly(seed, 0x8020_0003, (1u64 << 32) - 1)
    }

    fn from_poly(seed: u64, mask: u64, width_mask: u64) -> Self {
        let mut state = seed & width_mask;
        if state == 0 {
            state = width_mask;
        }
        Lfsr {
            state,
            mask,
            width_mask,
        }
    }

    /// Current register state.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Advances one clock and returns the shifted-out bit.
    #[inline]
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.mask;
        }
        self.state &= self.width_mask;
        out
    }

    /// Produces the next `n` bits as the low bits of a word (bit 0 first).
    pub fn next_word(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut w = 0u64;
        for i in 0..n {
            if self.next_bit() {
                w |= 1 << i;
            }
        }
        w
    }

    /// Period of the register (`2^width - 1` for the supported maximal
    /// polynomials).
    pub fn period(&self) -> u64 {
        self.width_mask
    }
}

impl fmt::Display for Lfsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lfsr(state={:#x})", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_period_8bit() {
        let mut l = Lfsr::new(8, 1).expect("supported width");
        let start = l.state();
        let mut count = 0u64;
        loop {
            l.next_bit();
            count += 1;
            if l.state() == start {
                break;
            }
            assert!(count <= 255, "period exceeded 2^8-1");
        }
        assert_eq!(count, 255);
    }

    #[test]
    fn full_period_16bit() {
        let mut l = Lfsr::new(16, 0xACE1).expect("supported width");
        let start = l.state();
        let mut count = 0u64;
        loop {
            l.next_bit();
            count += 1;
            if l.state() == start {
                break;
            }
            assert!(count <= 65535, "period exceeded 2^16-1");
        }
        assert_eq!(count, 65535);
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut l = Lfsr::new(16, 0).expect("supported width");
        assert_ne!(l.state(), 0);
        l.next_bit();
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn bit_balance_is_reasonable() {
        let mut l = Lfsr::new(32, 0xDEADBEEF).expect("supported width");
        let ones: u32 = (0..10_000).map(|_| u32::from(l.next_bit())).sum();
        assert!((4_500..=5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn rejects_unsupported_width() {
        assert_eq!(Lfsr::new(13, 1), Err(UnsupportedLfsrWidthError(13)));
    }

    #[test]
    fn new32_matches_generic_constructor() {
        let mut a = Lfsr::new(32, 0xACE1).expect("supported width");
        let mut b = Lfsr::new32(0xACE1);
        for _ in 0..64 {
            assert_eq!(a.next_bit(), b.next_bit());
        }
    }

    #[test]
    fn next_word_packs_bits() {
        let mut a = Lfsr::new(16, 0xACE1).expect("supported width");
        let mut b = Lfsr::new(16, 0xACE1).expect("supported width");
        let w = a.next_word(16);
        for i in 0..16 {
            assert_eq!((w >> i) & 1 == 1, b.next_bit());
        }
    }
}
