//! Logic diagnosis from fail data — the paper's *raison d'être*.
//!
//! Section I motivates the whole design flow with two consumers of the
//! collected fail data:
//!
//! * **workshop repair** — the failing BIST session directly identifies the
//!   faulty ECU (that part is the DSE's test-quality objective), and
//! * **failure analysis** — "logic diagnosis of the faulty IC can proceed
//!   with the collected information in the fail memory in order to find the
//!   responsible faulty location" (Section IV-B).
//!
//! This module implements the second step in the spirit of the cited
//! window-based diagnosis works (\[9\], \[10\]): with per-window MISR
//! signatures ("strong windows"), the *set* of failing windows fingerprints
//! a fault. Candidate stuck-at faults are ranked by the Jaccard similarity
//! between their *predicted* failing-window set (from fault simulation of
//! the session's pattern stream) and the *observed* one.
//!
//! Dictionary construction and lookup are both structured rather than
//! brute-forced (see DESIGN.md §15):
//!
//! * the dictionary comes from the shared one-pass
//!   [`SessionTable`](crate::SessionTable) sweep instead of a per-fault
//!   session replay, and
//! * [`diagnose`](Diagnoser::diagnose) walks an inverted
//!   failing-window → candidate posting-list index (scoring only
//!   candidates that share ≥ 1 observed window — every other candidate
//!   scores exactly `0.0`), with an exact-syndrome-fingerprint fast path
//!   that memoizes the full ranking of unimpaired uploads. Both paths are
//!   provably identical — same scores, same `total_cmp` tie order — to
//!   the retained [`diagnose_linear`](Diagnoser::diagnose_linear) scan,
//!   which a proptest oracle holds bit-equal.

use std::collections::HashMap;
use std::sync::OnceLock;

use eea_faultsim::Fault;
use eea_netlist::Circuit;

use crate::fail::FailData;
use crate::index::InvertedIndex;
use crate::session_table::SessionTable;

/// A ranked diagnosis candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate fault.
    pub fault: Fault,
    /// Match score in `[0, 1]` (1 = the candidate explains the observed
    /// fail data perfectly).
    pub score: f64,
}

/// Condensed outcome of one diagnosis, for consumers that need placement
/// statistics rather than the full ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagnosisSummary {
    /// Total number of ranked candidates.
    pub candidates: usize,
    /// 1-based rank class of the queried fault: `1 +` the number of
    /// *distinct* scores strictly above its own. `None` if the fault is
    /// not a dictionary candidate.
    pub rank: Option<usize>,
    /// Whether the queried fault sits in the top equivalence class.
    pub localized: bool,
}

/// Window-based logic diagnosis for one BIST session configuration.
///
/// Precomputes, per candidate fault, the set of windows whose signatures
/// the fault would corrupt; [`diagnose`](Self::diagnose) then ranks
/// candidates against observed fail data.
///
/// # Example
///
/// ```
/// use eea_netlist::{synthesize, SynthConfig, ScanChains};
/// use eea_bist::{Diagnoser, StumpsSession};
/// use eea_faultsim::FaultUniverse;
///
/// let c = synthesize(&SynthConfig { gates: 120, inputs: 8, dffs: 16, seed: 3, ..SynthConfig::default() }).expect("synthesizes");
/// let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
/// let session = StumpsSession::new(&c, &chains, 0xACE1, 16);
/// let golden = session.run_golden(128);
///
/// // Injected defect:
/// let universe = FaultUniverse::collapsed(&c);
/// let defect = universe.fault(7);
/// let observed = session.run_with_fault(defect, &golden);
///
/// let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 16, 128);
/// let ranked = diagnoser.diagnose(&observed);
/// assert!(!observed.is_pass());
/// // The true defect ranks at (or ties for) the top.
/// let best = ranked[0].score;
/// assert!(ranked.iter().any(|cand| cand.fault == defect && cand.score == best));
/// ```
#[derive(Debug)]
pub struct Diagnoser {
    /// Candidate faults with their predicted failing-window set (strictly
    /// increasing; empty for faults the session does not detect at all).
    /// Sorted by fault, so slot order equals the `total_cmp` tie order.
    dictionary: Vec<(Fault, Vec<u32>)>,
    windows: u32,
    /// Failing-window → candidate-slot posting lists.
    index: InvertedIndex<u32>,
    /// FNV-1a fingerprint of each distinct non-empty predicted window set
    /// → representative slot (first in slot order).
    fingerprints: HashMap<u64, u32>,
    /// Memoized full ranking per fingerprint representative, filled on
    /// first exact-syndrome hit.
    memo: Vec<OnceLock<Vec<Candidate>>>,
}

impl Diagnoser {
    /// Builds the fault dictionary via a one-pass [`SessionTable`] sweep
    /// of the session's pattern stream.
    ///
    /// Parameters mirror [`StumpsSession::new`](crate::StumpsSession::new)
    /// plus the session length in `patterns`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `patterns == 0`.
    pub fn new(
        circuit: &Circuit,
        chains: &eea_netlist::ScanChains,
        lfsr_seed: u64,
        window: u64,
        patterns: u64,
    ) -> Self {
        Self::from_table(&SessionTable::build(
            circuit, chains, lfsr_seed, window, patterns, 1,
        ))
    }

    /// Builds the diagnoser from an already-computed session table — the
    /// shared-dictionary path: the fleet's `CutModel` builds the table
    /// once and derives both its fail table and this dictionary from it.
    pub fn from_table(table: &SessionTable) -> Self {
        let mut dictionary: Vec<(Fault, Vec<u32>)> = (0..table.num_faults())
            .map(|i| (table.fault(i), table.detect_windows(i).to_vec()))
            .collect();
        // Slot order = fault order: the zero-score tail of an indexed
        // ranking then comes out in `total_cmp` tie order by construction.
        dictionary.sort_by_key(|a| a.0);
        let index = InvertedIndex::build(dictionary.iter().map(|(_, set)| set));
        let mut fingerprints = HashMap::new();
        for (slot, (_, set)) in dictionary.iter().enumerate() {
            if !set.is_empty() {
                fingerprints.entry(fnv1a_windows(set)).or_insert(slot as u32);
            }
        }
        let memo = (0..dictionary.len()).map(|_| OnceLock::new()).collect();
        Diagnoser {
            dictionary,
            windows: table.windows(),
            index,
            fingerprints,
            memo,
        }
    }

    /// Number of candidate faults in the dictionary.
    pub fn num_candidates(&self) -> usize {
        self.dictionary.len()
    }

    /// Ranks candidate faults against observed fail data, best first.
    ///
    /// Scoring: Jaccard similarity of the predicted and observed
    /// failing-window sets (1.0 = the candidate explains exactly the
    /// observed windows). For a PASS observation, session-undetectable
    /// candidates score 1.0 and everything else 0.
    ///
    /// Output is bit-identical to
    /// [`diagnose_linear`](Self::diagnose_linear); only candidates sharing
    /// an observed window are scored (everything else is a provable
    /// `0.0`), and an upload whose window set exactly matches a
    /// dictionary entry — the unimpaired common case — returns a
    /// memoized ranking.
    pub fn diagnose(&self, observed: &FailData) -> Vec<Candidate> {
        let raw: Vec<u32> = observed.entries().iter().map(|e| e.window).collect();
        if !raw.windows(2).all(|p| p[0] <= p[1]) {
            // The linear scan's binary search assumes sorted observations;
            // reproduce its behaviour on out-of-order input verbatim.
            return self.diagnose_linear(observed);
        }
        if !raw.is_empty() && raw.windows(2).all(|p| p[0] < p[1]) {
            // Exact-syndrome fast path: dictionary sets are strictly
            // increasing, so only duplicate-free observations can match.
            if let Some(&slot) = self.fingerprints.get(&fnv1a_windows(&raw)) {
                if self.dictionary[slot as usize].1 == raw {
                    return self.memo[slot as usize]
                        .get_or_init(|| self.rank_indexed(&raw, raw.len()))
                        .clone();
                }
            }
        }
        let mut dedup = raw.clone();
        dedup.dedup();
        self.rank_indexed(&dedup, raw.len())
    }

    /// Index-backed ranking. `observed` is deduplicated and sorted;
    /// `raw_len` is the undeduplicated observation length (the `|observed|`
    /// term of the Jaccard denominator, matching the linear scan).
    fn rank_indexed(&self, observed: &[u32], raw_len: usize) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.dictionary.len());
        if raw_len == 0 {
            // PASS: undetectable candidates score 1.0, everything else
            // 0.0; within each class the tie order is fault order = slot
            // order.
            for (fault, predicted) in &self.dictionary {
                if predicted.is_empty() {
                    out.push(Candidate {
                        fault: *fault,
                        score: 1.0,
                    });
                }
            }
            for (fault, predicted) in &self.dictionary {
                if !predicted.is_empty() {
                    out.push(Candidate {
                        fault: *fault,
                        score: 0.0,
                    });
                }
            }
            return out;
        }
        let hits = self.index.intersect(observed);
        // Candidates sharing ≥1 window score strictly above 0; everything
        // untouched scores exactly 0.0 (`0 / union` in the linear scan).
        let mut touched: Vec<(u32, f64)> = hits
            .iter()
            .map(|&(slot, inter)| {
                let union = self.index.predicted_len(slot) as usize + raw_len - inter as usize;
                (slot, inter as f64 / union as f64)
            })
            .collect();
        touched.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(slot, score) in &touched {
            out.push(Candidate {
                fault: self.dictionary[slot as usize].0,
                score,
            });
        }
        // Zero tail in slot order; `hits` is ascending by slot.
        let mut next_hit = hits.iter().map(|&(slot, _)| slot).peekable();
        for (slot, (fault, _)) in self.dictionary.iter().enumerate() {
            if next_hit.peek() == Some(&(slot as u32)) {
                next_hit.next();
            } else {
                out.push(Candidate {
                    fault: *fault,
                    score: 0.0,
                });
            }
        }
        out
    }

    /// The historical linear Jaccard scan over every candidate, kept as
    /// the reference implementation: [`diagnose`](Self::diagnose) must
    /// stay `PartialEq`-identical to it (proptest-enforced), and
    /// out-of-order observations fall back to it.
    pub fn diagnose_linear(&self, observed: &FailData) -> Vec<Candidate> {
        let observed_set: Vec<u32> = observed.entries().iter().map(|e| e.window).collect();
        let mut out: Vec<Candidate> = self
            .dictionary
            .iter()
            .map(|(fault, predicted)| {
                let score = if observed_set.is_empty() && predicted.is_empty() {
                    1.0
                } else {
                    let inter = predicted
                        .iter()
                        .filter(|w| observed_set.binary_search(w).is_ok())
                        .count();
                    let union = predicted.len() + observed_set.len() - inter;
                    if union == 0 {
                        1.0
                    } else {
                        inter as f64 / union as f64
                    }
                };
                Candidate {
                    fault: *fault,
                    score,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.fault.cmp(&b.fault))
        });
        out
    }

    /// Ranks the observation and condenses the placement of `fault` into
    /// a [`DiagnosisSummary`] — one lookup serving consumers that would
    /// otherwise diagnose the same upload repeatedly (candidate count,
    /// rank class and localization in one pass).
    pub fn diagnose_summary(&self, fault: Fault, observed: &FailData) -> DiagnosisSummary {
        let ranked = self.diagnose(observed);
        summarize(&ranked, |c| c.fault == fault, |c| c.score)
    }

    /// Diagnostic resolution for a given observation: the number of
    /// candidates sharing the top score (1 = perfect resolution).
    pub fn resolution(&self, observed: &FailData) -> usize {
        let ranked = self.diagnose(observed);
        match ranked.first() {
            None => 0,
            Some(best) => ranked
                .iter()
                .take_while(|c| c.score == best.score)
                .count(),
        }
    }

    /// Number of signature windows of the configured session.
    pub fn windows(&self) -> u32 {
        self.windows
    }
}

/// Condenses a best-first ranking into a [`DiagnosisSummary`] for the
/// candidate selected by `is_target`. Shared by the logic and SRAM
/// diagnosis paths (their candidate types differ).
pub(crate) fn summarize<C>(
    ranked: &[C],
    is_target: impl Fn(&C) -> bool,
    score_of: impl Fn(&C) -> f64,
) -> DiagnosisSummary {
    let pos = ranked.iter().position(is_target);
    let rank = pos.map(|p| {
        let score = score_of(&ranked[p]);
        let mut distinct_above = 0usize;
        let mut prev: Option<f64> = None;
        for c in &ranked[..p] {
            let s = score_of(c);
            if s > score && prev != Some(s) {
                distinct_above += 1;
                prev = Some(s);
            }
        }
        1 + distinct_above
    });
    let localized = match pos {
        Some(p) => score_of(&ranked[p]) == score_of(&ranked[0]),
        None => false,
    };
    DiagnosisSummary {
        candidates: ranked.len(),
        rank,
        localized,
    }
}

/// FNV-1a over a window set (little-endian byte order per window).
fn fnv1a_windows(windows: &[u32]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for &w in windows {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stumps::StumpsSession;
    use eea_faultsim::FaultUniverse;
    use eea_netlist::{synthesize, ScanChains, SynthConfig};

    fn setup() -> (Circuit, ScanChains) {
        let c = synthesize(&SynthConfig {
            gates: 150,
            inputs: 10,
            dffs: 12,
            seed: 0xD1A6,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
        (c, chains)
    }

    #[test]
    fn true_fault_ranks_top() {
        let (c, chains) = setup();
        let session = StumpsSession::new(&c, &chains, 0xACE1, 8);
        let golden = session.run_golden(256);
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 256);
        let universe = FaultUniverse::collapsed(&c);

        let mut diagnosed = 0;
        let mut tried = 0;
        for fi in (0..universe.num_faults()).step_by(7) {
            let defect = universe.fault(fi);
            let observed = session.run_with_fault(defect, &golden);
            if observed.is_pass() {
                continue; // undetected by this session
            }
            tried += 1;
            let ranked = diagnoser.diagnose(&observed);
            let best = ranked[0].score;
            if ranked
                .iter()
                .take_while(|cand| cand.score == best)
                .any(|cand| cand.fault == defect)
            {
                diagnosed += 1;
            }
        }
        assert!(tried > 10, "too few detectable defects exercised");
        assert_eq!(
            diagnosed, tried,
            "every injected defect must rank within the top equivalence class"
        );
    }

    #[test]
    fn pass_observation_scores_undetectable_faults() {
        let (c, chains) = setup();
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 64);
        let ranked = diagnoser.diagnose(&FailData::new());
        // Top candidates of a PASS are exactly the session-undetectable
        // faults.
        assert!(ranked[0].score == 1.0 || ranked[0].score == 0.0);
        for cand in ranked.iter().filter(|c| c.score == 1.0) {
            let in_dict = diagnoser
                .dictionary
                .iter()
                .find(|(f, _)| *f == cand.fault)
                .expect("candidate from dictionary");
            assert!(in_dict.1.is_empty());
        }
    }

    #[test]
    fn longer_sessions_improve_resolution() {
        let (c, chains) = setup();
        let universe = FaultUniverse::collapsed(&c);
        // Average resolution with small vs large window counts.
        let mut resolutions = Vec::new();
        for (window, patterns) in [(64u64, 128u64), (4, 128)] {
            let session = StumpsSession::new(&c, &chains, 0xACE1, window);
            let golden = session.run_golden(patterns);
            let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, window, patterns);
            let mut total = 0usize;
            let mut count = 0usize;
            for fi in (0..universe.num_faults()).step_by(11) {
                let observed = session.run_with_fault(universe.fault(fi), &golden);
                if observed.is_pass() {
                    continue;
                }
                total += diagnoser.resolution(&observed);
                count += 1;
            }
            resolutions.push(total as f64 / count.max(1) as f64);
        }
        // Finer windows (more signatures) give at-least-as-good resolution
        // (fewer candidates tied at the top).
        assert!(
            resolutions[1] <= resolutions[0] + 1e-9,
            "finer windows should not hurt resolution: {resolutions:?}"
        );
    }

    #[test]
    fn dictionary_covers_universe() {
        let (c, chains) = setup();
        let diagnoser = Diagnoser::new(&c, &chains, 1, 16, 64);
        let universe = FaultUniverse::collapsed(&c);
        assert_eq!(diagnoser.num_candidates(), universe.num_faults());
        assert_eq!(diagnoser.windows(), 4);
    }

    #[test]
    fn indexed_matches_linear_on_session_observations() {
        let (c, chains) = setup();
        let session = StumpsSession::new(&c, &chains, 0xACE1, 8);
        let golden = session.run_golden(192);
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 192);
        let universe = FaultUniverse::collapsed(&c);
        for fi in (0..universe.num_faults()).step_by(5) {
            let observed = session.run_with_fault(universe.fault(fi), &golden);
            assert_eq!(
                diagnoser.diagnose(&observed),
                diagnoser.diagnose_linear(&observed),
                "fault {fi}"
            );
            // Repeat to exercise the memoized fingerprint path.
            assert_eq!(
                diagnoser.diagnose(&observed),
                diagnoser.diagnose_linear(&observed),
                "fault {fi} (memoized)"
            );
        }
        // PASS observation.
        let pass = FailData::new();
        assert_eq!(diagnoser.diagnose(&pass), diagnoser.diagnose_linear(&pass));
    }

    #[test]
    fn out_of_order_observation_falls_back_to_linear() {
        let (c, chains) = setup();
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 192);
        let mut observed = FailData::new();
        observed.push(9, 0xDEAD);
        observed.push(2, 0xBEEF);
        assert_eq!(
            diagnoser.diagnose(&observed),
            diagnoser.diagnose_linear(&observed)
        );
    }

    #[test]
    fn summary_matches_manual_ranking_walk() {
        let (c, chains) = setup();
        let session = StumpsSession::new(&c, &chains, 0xACE1, 8);
        let golden = session.run_golden(192);
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 192);
        let universe = FaultUniverse::collapsed(&c);
        let mut checked = 0;
        for fi in (0..universe.num_faults()).step_by(13) {
            let defect = universe.fault(fi);
            let observed = session.run_with_fault(defect, &golden);
            let ranked = diagnoser.diagnose(&observed);
            let s = diagnoser.diagnose_summary(defect, &observed);
            assert_eq!(s.candidates, ranked.len());
            let pos = ranked
                .iter()
                .position(|cand| cand.fault == defect)
                .expect("defect is a dictionary candidate");
            let mut above: Vec<f64> = ranked[..pos]
                .iter()
                .map(|cand| cand.score)
                .filter(|&x| x > ranked[pos].score)
                .collect();
            above.dedup();
            assert_eq!(s.rank, Some(1 + above.len()));
            assert_eq!(s.localized, ranked[pos].score == ranked[0].score);
            checked += 1;
        }
        assert!(checked > 5);
    }
}
