//! Logic diagnosis from fail data — the paper's *raison d'être*.
//!
//! Section I motivates the whole design flow with two consumers of the
//! collected fail data:
//!
//! * **workshop repair** — the failing BIST session directly identifies the
//!   faulty ECU (that part is the DSE's test-quality objective), and
//! * **failure analysis** — "logic diagnosis of the faulty IC can proceed
//!   with the collected information in the fail memory in order to find the
//!   responsible faulty location" (Section IV-B).
//!
//! This module implements the second step in the spirit of the cited
//! window-based diagnosis works (\[9\], \[10\]): with per-window MISR
//! signatures ("strong windows"), the *set* of failing windows fingerprints
//! a fault. Candidate stuck-at faults are ranked by the Jaccard similarity
//! between their *predicted* failing-window set (from fault simulation of
//! the session's pattern stream) and the *observed* one.

use eea_faultsim::{Fault, FaultSim, FaultUniverse, PatternBlock};
use eea_netlist::Circuit;

use crate::fail::FailData;
use crate::lfsr::Lfsr;
use crate::stumps::lfsr_pattern_block;

/// A ranked diagnosis candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate fault.
    pub fault: Fault,
    /// Match score in `[0, 1]` (1 = the candidate explains the observed
    /// fail data perfectly).
    pub score: f64,
}

/// Window-based logic diagnosis for one BIST session configuration.
///
/// Precomputes, per candidate fault, the set of windows whose signatures
/// the fault would corrupt; [`diagnose`](Self::diagnose) then ranks
/// candidates against observed fail data.
///
/// # Example
///
/// ```
/// use eea_netlist::{synthesize, SynthConfig, ScanChains};
/// use eea_bist::{Diagnoser, StumpsSession};
/// use eea_faultsim::FaultUniverse;
///
/// let c = synthesize(&SynthConfig { gates: 120, inputs: 8, dffs: 16, seed: 3, ..SynthConfig::default() }).expect("synthesizes");
/// let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
/// let session = StumpsSession::new(&c, &chains, 0xACE1, 16);
/// let golden = session.run_golden(128);
///
/// // Injected defect:
/// let universe = FaultUniverse::collapsed(&c);
/// let defect = universe.fault(7);
/// let observed = session.run_with_fault(defect, &golden);
///
/// let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 16, 128);
/// let ranked = diagnoser.diagnose(&observed);
/// assert!(!observed.is_pass());
/// // The true defect ranks at (or ties for) the top.
/// let best = ranked[0].score;
/// assert!(ranked.iter().any(|cand| cand.fault == defect && cand.score == best));
/// ```
#[derive(Debug)]
pub struct Diagnoser {
    /// Candidate faults with their predicted failing-window set (sorted;
    /// empty for faults the session does not detect at all).
    dictionary: Vec<(Fault, Vec<u32>)>,
    windows: u32,
}

impl Diagnoser {
    /// Builds the fault dictionary by simulating the session's pattern
    /// stream once per fault (window granularity).
    ///
    /// Parameters mirror [`StumpsSession::new`](crate::StumpsSession::new)
    /// plus the session length in `patterns`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `patterns == 0`.
    pub fn new(
        circuit: &Circuit,
        chains: &eea_netlist::ScanChains,
        lfsr_seed: u64,
        window: u64,
        patterns: u64,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(patterns > 0, "session must apply patterns");
        let universe = FaultUniverse::collapsed(circuit);
        let mut failing: Vec<std::collections::BTreeSet<u32>> =
            vec![std::collections::BTreeSet::new(); universe.num_faults()];
        let mut sim = FaultSim::new(circuit);
        let mut lfsr = Lfsr::new32(lfsr_seed);
        let mut done = 0u64;
        while done < patterns {
            let count = ((patterns - done).min(PatternBlock::CAPACITY as u64)) as usize;
            let block = lfsr_pattern_block(circuit, chains, &mut lfsr, count);
            sim.run_good(&block);
            for (fi, fail_windows) in failing.iter_mut().enumerate() {
                let mask = sim.detect_mask(universe.fault(fi), &block, false);
                for j in mask.iter_ones() {
                    let pattern_idx = done + u64::from(j);
                    fail_windows.insert((pattern_idx / window) as u32);
                }
            }
            done += count as u64;
        }
        let dictionary = (0..universe.num_faults())
            .map(|fi| {
                (
                    universe.fault(fi),
                    failing[fi].iter().copied().collect::<Vec<u32>>(),
                )
            })
            .collect();
        Diagnoser {
            dictionary,
            windows: (patterns / window) as u32,
        }
    }

    /// Number of candidate faults in the dictionary.
    pub fn num_candidates(&self) -> usize {
        self.dictionary.len()
    }

    /// Ranks candidate faults against observed fail data, best first.
    ///
    /// Scoring: Jaccard similarity of the predicted and observed
    /// failing-window sets (1.0 = the candidate explains exactly the
    /// observed windows). For a PASS observation, session-undetectable
    /// candidates score 1.0 and everything else 0.
    pub fn diagnose(&self, observed: &FailData) -> Vec<Candidate> {
        let observed_set: Vec<u32> = observed.entries().iter().map(|e| e.window).collect();
        let mut out: Vec<Candidate> = self
            .dictionary
            .iter()
            .map(|(fault, predicted)| {
                let score = if observed_set.is_empty() && predicted.is_empty() {
                    1.0
                } else {
                    let inter = predicted
                        .iter()
                        .filter(|w| observed_set.binary_search(w).is_ok())
                        .count();
                    let union = predicted.len() + observed_set.len() - inter;
                    if union == 0 {
                        1.0
                    } else {
                        inter as f64 / union as f64
                    }
                };
                Candidate {
                    fault: *fault,
                    score,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.fault.cmp(&b.fault))
        });
        out
    }

    /// Diagnostic resolution for a given observation: the number of
    /// candidates sharing the top score (1 = perfect resolution).
    pub fn resolution(&self, observed: &FailData) -> usize {
        let ranked = self.diagnose(observed);
        match ranked.first() {
            None => 0,
            Some(best) => ranked
                .iter()
                .take_while(|c| c.score == best.score)
                .count(),
        }
    }

    /// Number of signature windows of the configured session.
    pub fn windows(&self) -> u32 {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stumps::StumpsSession;
    use eea_netlist::{synthesize, ScanChains, SynthConfig};

    fn setup() -> (Circuit, ScanChains) {
        let c = synthesize(&SynthConfig {
            gates: 150,
            inputs: 10,
            dffs: 12,
            seed: 0xD1A6,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
        (c, chains)
    }

    #[test]
    fn true_fault_ranks_top() {
        let (c, chains) = setup();
        let session = StumpsSession::new(&c, &chains, 0xACE1, 8);
        let golden = session.run_golden(256);
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 256);
        let universe = FaultUniverse::collapsed(&c);

        let mut diagnosed = 0;
        let mut tried = 0;
        for fi in (0..universe.num_faults()).step_by(7) {
            let defect = universe.fault(fi);
            let observed = session.run_with_fault(defect, &golden);
            if observed.is_pass() {
                continue; // undetected by this session
            }
            tried += 1;
            let ranked = diagnoser.diagnose(&observed);
            let best = ranked[0].score;
            if ranked
                .iter()
                .take_while(|cand| cand.score == best)
                .any(|cand| cand.fault == defect)
            {
                diagnosed += 1;
            }
        }
        assert!(tried > 10, "too few detectable defects exercised");
        assert_eq!(
            diagnosed, tried,
            "every injected defect must rank within the top equivalence class"
        );
    }

    #[test]
    fn pass_observation_scores_undetectable_faults() {
        let (c, chains) = setup();
        let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, 8, 64);
        let ranked = diagnoser.diagnose(&FailData::new());
        // Top candidates of a PASS are exactly the session-undetectable
        // faults.
        assert!(ranked[0].score == 1.0 || ranked[0].score == 0.0);
        for cand in ranked.iter().filter(|c| c.score == 1.0) {
            let in_dict = diagnoser
                .dictionary
                .iter()
                .find(|(f, _)| *f == cand.fault)
                .expect("candidate from dictionary");
            assert!(in_dict.1.is_empty());
        }
    }

    #[test]
    fn longer_sessions_improve_resolution() {
        let (c, chains) = setup();
        let universe = FaultUniverse::collapsed(&c);
        // Average resolution with small vs large window counts.
        let mut resolutions = Vec::new();
        for (window, patterns) in [(64u64, 128u64), (4, 128)] {
            let session = StumpsSession::new(&c, &chains, 0xACE1, window);
            let golden = session.run_golden(patterns);
            let diagnoser = Diagnoser::new(&c, &chains, 0xACE1, window, patterns);
            let mut total = 0usize;
            let mut count = 0usize;
            for fi in (0..universe.num_faults()).step_by(11) {
                let observed = session.run_with_fault(universe.fault(fi), &golden);
                if observed.is_pass() {
                    continue;
                }
                total += diagnoser.resolution(&observed);
                count += 1;
            }
            resolutions.push(total as f64 / count.max(1) as f64);
        }
        // Finer windows (more signatures) give at-least-as-good resolution
        // (fewer candidates tied at the top).
        assert!(
            resolutions[1] <= resolutions[0] + 1e-9,
            "finer windows should not hurt resolution: {resolutions:?}"
        );
    }

    #[test]
    fn dictionary_covers_universe() {
        let (c, chains) = setup();
        let diagnoser = Diagnoser::new(&c, &chains, 1, 16, 64);
        let universe = FaultUniverse::collapsed(&c);
        assert_eq!(diagnoser.num_candidates(), universe.num_faults());
        assert_eq!(diagnoser.windows(), 4);
    }
}
