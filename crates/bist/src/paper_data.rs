//! The published Table I dataset and the paper CUT's characteristics.
//!
//! The paper characterises 36 BIST profiles on an Infineon automotive
//! microprocessor. The netlist is proprietary, but the published profile
//! attributes are data; embedding them lets the case study (Figs. 5 and 6)
//! run against the *exact* inputs the paper used, while
//! [`generate_profiles`](crate::generate_profiles) regenerates the same
//! shape from scratch on open circuits.

use crate::profile::{BistProfile, PaperCutSpec};

/// The paper CUT: 371,900 collapsed faults, 100 scan chains with maximum
/// length 77, 40 MHz test frequency (Section IV-A).
pub const PAPER_CUT: PaperCutSpec = PaperCutSpec {
    collapsed_faults: 371_900,
    scan_chains: 100,
    max_chain_length: 77,
    test_frequency_hz: 40_000_000,
};

/// Rows of Table I: (number of PRPs, coverage %, runtime ms, data bytes).
const TABLE1: [(u64, f64, f64, u64); 36] = [
    (500, 99.83, 4.87, 2_399_185),
    (500, 99.84, 4.87, 2_401_554),
    (500, 98.17, 2.81, 994_156),
    (500, 95.73, 1.71, 455_061),
    (1_000, 99.84, 5.79, 2_370_883),
    (1_000, 99.84, 5.74, 2_340_080),
    (1_000, 98.15, 3.66, 918_895),
    (1_000, 96.13, 2.67, 455_193),
    (5_000, 99.87, 13.37, 2_300_488),
    (5_000, 99.87, 13.31, 2_263_762),
    (5_000, 98.21, 11.23, 772_886),
    (5_000, 95.61, 10.25, 311_258),
    (10_000, 99.87, 22.93, 2_261_705),
    (10_000, 99.87, 22.85, 2_210_762),
    (10_000, 98.06, 20.61, 834_119),
    (10_000, 95.97, 19.75, 304_549),
    (20_000, 99.88, 42.11, 2_216_126),
    (20_000, 99.88, 42.05, 2_180_585),
    (20_000, 97.62, 39.74, 757_737),
    (20_000, 95.16, 38.88, 229_353),
    (50_000, 99.87, 99.59, 2_054_510),
    (50_000, 99.87, 99.53, 2_018_968),
    (50_000, 97.93, 97.24, 610_337),
    (50_000, 96.11, 96.63, 231_227),
    (100_000, 99.87, 195.84, 2_054_081),
    (100_000, 99.87, 195.74, 1_994_845),
    (100_000, 98.10, 193.49, 611_093),
    (100_000, 95.36, 192.76, 158_531),
    (200_000, 99.89, 388.06, 1_888_552),
    (200_000, 99.89, 387.99, 1_843_533),
    (200_000, 98.13, 385.87, 540_342),
    (200_000, 95.99, 385.26, 162_417),
    (500_000, 99.89, 965.35, 1_767_609),
    (500_000, 99.89, 965.31, 1_741_544),
    (500_000, 98.28, 963.25, 475_080),
    (500_000, 96.69, 962.76, 171_792),
];

/// The 36 BIST profiles of Table I, in publication order (profile numbers
/// 1..=36).
pub fn paper_table1() -> Vec<BistProfile> {
    TABLE1
        .iter()
        .enumerate()
        .map(|(i, &(prps, cov_pct, runtime_ms, bytes))| BistProfile {
            id: (i + 1) as u32,
            random_patterns: prps,
            deterministic_patterns: 0, // not published per-profile
            coverage: cov_pct / 100.0,
            runtime_ms,
            data_bytes: bytes,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_36_profiles() {
        let p = paper_table1();
        assert_eq!(p.len(), 36);
        assert_eq!(p[0].id, 1);
        assert_eq!(p[35].id, 36);
    }

    #[test]
    fn spot_check_rows() {
        let p = paper_table1();
        // Profile 4: 500 PRPs, 95.73 %, 1.71 ms, 455,061 bytes.
        assert_eq!(p[3].random_patterns, 500);
        assert!((p[3].coverage - 0.9573).abs() < 1e-9);
        assert!((p[3].runtime_ms - 1.71).abs() < 1e-9);
        assert_eq!(p[3].data_bytes, 455_061);
        // Profile 33: 500,000 PRPs, 99.89 %, 965.35 ms.
        assert_eq!(p[32].random_patterns, 500_000);
        assert!((p[32].runtime_ms - 965.35).abs() < 1e-9);
    }

    #[test]
    fn runtime_grows_with_prps_within_coverage_class() {
        // Within the "max coverage" class (rows 1, 5, 9, ... of each PRP
        // group) runtime must increase with the pattern count.
        let p = paper_table1();
        let max_class: Vec<&BistProfile> =
            p.iter().step_by(4).collect();
        for w in max_class.windows(2) {
            assert!(w[1].runtime_ms > w[0].runtime_ms);
        }
    }

    #[test]
    fn data_shrinks_with_more_prps_for_lowest_class() {
        let p = paper_table1();
        // 95 % class, 500 vs 500,000 PRPs.
        assert!(p[35].data_bytes < p[3].data_bytes);
    }

    #[test]
    fn cut_spec() {
        assert_eq!(PAPER_CUT.collapsed_faults, 371_900);
        assert_eq!(PAPER_CUT.scan_chains, 100);
    }
}
