//! March-test memory BIST — the second CUT family.
//!
//! Distributed embedded SRAMs are tested with march algorithms rather
//! than STUMPS sessions. This module models a word-addressed SRAM and
//! runs **March C-** over it — six elements, `10·N` operations:
//!
//! ```text
//! ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
//! ```
//!
//! The modeled fault classes are the classic memory-fault taxonomy the
//! march literature diagnoses: **SAF** (stuck-at-0/1 cells), **TF**
//! (transition faults — a cell that cannot rise or cannot fall) and
//! **CFin** (inversion coupling — a rising aggressor cell inverts its
//! neighbouring victim). Every read mismatch folds the failing address
//! and error bits into a per-element syndrome signature, captured as one
//! [`FailData`] entry per failing march element — the same fail-memory
//! payload the logic family ships, so the gateway's upload and diagnosis
//! paths handle both families uniformly. Diagnosis ranks candidate
//! faults by Jaccard similarity over the `(element, syndrome)` entry
//! sets, mirroring the window-based logic diagnosis.

use crate::diagnosis::{summarize, DiagnosisSummary};
use crate::fail::{FailData, FailEntry};
use crate::index::InvertedIndex;

/// Which kind of circuit a BIST session exercises: the existing STUMPS
/// stuck-at logic path, or an embedded SRAM under march test. Campaigns
/// mix families per ECU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CutFamily {
    /// Scan-based logic BIST (STUMPS session, collapsed stuck-at faults).
    Logic,
    /// Embedded-SRAM march-test BIST (March C-, SAF/TF/CFin faults).
    Sram,
}

impl CutFamily {
    /// Stable lowercase label for reports and JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            CutFamily::Logic => "logic",
            CutFamily::Sram => "sram",
        }
    }
}

/// Geometry of the modeled SRAM: `words × bits` cells, word-addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Number of addressable words.
    pub words: u32,
    /// Bits per word (at most 64).
    pub bits: u32,
}

impl Default for SramConfig {
    /// A small distributed embedded SRAM: 64 words × 16 bits.
    fn default() -> Self {
        SramConfig {
            words: 64,
            bits: 16,
        }
    }
}

/// Memory-fault classes modeled under March C-.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MarchFaultKind {
    /// Cell stuck at 0: writes of 1 are ignored.
    StuckAt0,
    /// Cell stuck at 1: writes of 0 are ignored.
    StuckAt1,
    /// Transition fault, rising: the cell cannot make a 0→1 transition.
    TransitionRise,
    /// Transition fault, falling: the cell cannot make a 1→0 transition.
    TransitionFall,
    /// Inversion coupling: a 0→1 transition of the aggressor (the next
    /// cell in address order) inverts this victim cell.
    CouplingInv,
}

/// One modeled memory fault: a kind applied to a cell (linear cell index
/// `word · bits + bit`; for [`MarchFaultKind::CouplingInv`] the cell is
/// the victim and the aggressor is `cell + 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MarchFault {
    /// The fault class.
    pub kind: MarchFaultKind,
    /// Linear cell index.
    pub cell: u32,
}

/// A scored march-diagnosis candidate, best first after ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarchCandidate {
    /// Index into the [`MarchTest`] fault list.
    pub fault_index: u32,
    /// The candidate fault.
    pub fault: MarchFault,
    /// Jaccard similarity of predicted vs observed `(element, syndrome)`
    /// entries in `[0, 1]`.
    pub score: f64,
}

/// Typed errors of the march-test model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarchError {
    /// The SRAM has no words.
    ZeroWords,
    /// The SRAM has no bits per word.
    ZeroBits,
    /// Words wider than 64 bits are not representable.
    WordTooWide {
        /// The configured width.
        bits: u32,
    },
    /// The cell count exceeds what the per-fault dictionary build is
    /// willing to simulate.
    TooManyCells {
        /// The configured cell count.
        cells: u64,
    },
}

impl std::fmt::Display for MarchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarchError::ZeroWords => write!(f, "SRAM must have at least one word"),
            MarchError::ZeroBits => write!(f, "SRAM words must have at least one bit"),
            MarchError::WordTooWide { bits } => {
                write!(
                    f,
                    "SRAM words wider than 64 bits are unsupported (got {bits})"
                )
            }
            MarchError::TooManyCells { cells } => {
                write!(
                    f,
                    "SRAM too large for the march fault dictionary ({cells} cells)"
                )
            }
        }
    }
}

impl std::error::Error for MarchError {}

/// Dictionary builds simulate March C- once per fault (≈5 faults/cell ×
/// 10·words operations); this cap keeps the quadratic-ish cost bounded.
const MAX_CELLS: u64 = 1 << 16;

/// One March C- element: an optional read of the expected background, an
/// optional write of the new background, in ascending or descending
/// address order.
struct MarchElement {
    read_ones: Option<bool>,
    write_ones: Option<bool>,
    descending: bool,
}

/// March C-: ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0).
const MARCH_C_MINUS: [MarchElement; 6] = [
    MarchElement {
        read_ones: None,
        write_ones: Some(false),
        descending: false,
    },
    MarchElement {
        read_ones: Some(false),
        write_ones: Some(true),
        descending: false,
    },
    MarchElement {
        read_ones: Some(true),
        write_ones: Some(false),
        descending: false,
    },
    MarchElement {
        read_ones: Some(false),
        write_ones: Some(true),
        descending: true,
    },
    MarchElement {
        read_ones: Some(true),
        write_ones: Some(false),
        descending: true,
    },
    MarchElement {
        read_ones: Some(false),
        write_ones: None,
        descending: false,
    },
];

/// FNV-1a 64 constants for the per-element syndrome fold.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fold_syndrome(mut sig: u64, addr: u32, diff: u64) -> u64 {
    for value in [u64::from(addr), diff] {
        sig ^= value;
        sig = sig.wrapping_mul(FNV_PRIME);
    }
    sig
}

/// The SRAM under test with at most one injected fault. Fault semantics
/// are applied at write time (stuck cells also resist the initial
/// background write, so reads stay honest).
struct FaultySram {
    words: Vec<u64>,
    bits: u32,
    mask: u64,
    fault: Option<MarchFault>,
}

impl FaultySram {
    fn new(config: &SramConfig, fault: Option<MarchFault>) -> Self {
        let mask = if config.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << config.bits) - 1
        };
        FaultySram {
            words: vec![0; config.words as usize],
            bits: config.bits,
            mask,
            fault,
        }
    }

    fn read(&self, addr: u32) -> u64 {
        self.words[addr as usize]
    }

    fn write(&mut self, addr: u32, value: u64) {
        let old = self.words[addr as usize];
        let mut new = value & self.mask;
        match self.fault {
            Some(MarchFault {
                kind: MarchFaultKind::CouplingInv,
                cell,
            }) => {
                let aggressor = cell + 1;
                if aggressor / self.bits == addr {
                    let abit = 1u64 << (aggressor % self.bits);
                    if old & abit == 0 && new & abit != 0 {
                        let (vw, vb) = (cell / self.bits, cell % self.bits);
                        if vw == addr {
                            new ^= 1u64 << vb;
                        } else {
                            self.words[vw as usize] ^= 1u64 << vb;
                        }
                    }
                }
            }
            Some(MarchFault { kind, cell }) if cell / self.bits == addr => {
                let bit = 1u64 << (cell % self.bits);
                match kind {
                    MarchFaultKind::StuckAt0 => new &= !bit,
                    MarchFaultKind::StuckAt1 => new |= bit,
                    MarchFaultKind::TransitionRise => {
                        if old & bit == 0 {
                            new &= !bit;
                        }
                    }
                    MarchFaultKind::TransitionFall => {
                        if old & bit != 0 {
                            new |= bit;
                        }
                    }
                    MarchFaultKind::CouplingInv => {}
                }
            }
            _ => {}
        }
        self.words[addr as usize] = new;
    }
}

/// Precomputed per-fault behaviour of one embedded SRAM under March C-:
/// the SRAM-family counterpart of the fleet's logic `CutModel` — fail
/// data, detectability and a syndrome dictionary for diagnosis.
#[derive(Debug)]
pub struct MarchTest {
    config: SramConfig,
    faults: Vec<MarchFault>,
    fail_table: Vec<FailData>,
    detectable: Vec<u32>,
    /// `(element, syndrome)` → fault-index posting lists; slot order is
    /// fault-index order, which is also the diagnosis tie order.
    index: InvertedIndex<FailEntry>,
}

impl MarchTest {
    /// Enumerates the fault universe (per cell: SAF0, SAF1, TF↑, TF↓;
    /// per adjacent cell pair: CFin) and simulates March C- once per
    /// fault into the fail-data table.
    ///
    /// # Errors
    ///
    /// A [`MarchError`] for degenerate geometry.
    pub fn build(config: SramConfig) -> Result<Self, MarchError> {
        if config.words == 0 {
            return Err(MarchError::ZeroWords);
        }
        if config.bits == 0 {
            return Err(MarchError::ZeroBits);
        }
        if config.bits > 64 {
            return Err(MarchError::WordTooWide { bits: config.bits });
        }
        let cells = u64::from(config.words) * u64::from(config.bits);
        if cells > MAX_CELLS {
            return Err(MarchError::TooManyCells { cells });
        }
        let cells = cells as u32;
        let mut faults = Vec::with_capacity(cells as usize * 5);
        for cell in 0..cells {
            for kind in [
                MarchFaultKind::StuckAt0,
                MarchFaultKind::StuckAt1,
                MarchFaultKind::TransitionRise,
                MarchFaultKind::TransitionFall,
            ] {
                faults.push(MarchFault { kind, cell });
            }
        }
        for cell in 0..cells.saturating_sub(1) {
            faults.push(MarchFault {
                kind: MarchFaultKind::CouplingInv,
                cell,
            });
        }
        let mut fail_table = Vec::with_capacity(faults.len());
        let mut detectable = Vec::new();
        for (i, &fault) in faults.iter().enumerate() {
            let fail = run_march(&config, Some(fault));
            if !fail.is_pass() {
                detectable.push(i as u32);
            }
            fail_table.push(fail);
        }
        let index = InvertedIndex::build(fail_table.iter().map(|fd| fd.entries()));
        Ok(MarchTest {
            config,
            faults,
            fail_table,
            detectable,
            index,
        })
    }

    /// The geometry the model was built from.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Number of modeled memory faults.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// The `i`-th fault.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fault(&self, i: u32) -> MarchFault {
        self.faults[i as usize]
    }

    /// The precomputed fail data of fault `i` under March C-.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_data(&self, i: u32) -> &FailData {
        &self.fail_table[i as usize]
    }

    /// Encoded fail-data size (bytes) a defective SRAM ECU uploads for
    /// fault `i` — at most six `(element, syndrome)` entries, so march
    /// uploads are far smaller than logic fail memories.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_bytes(&self, i: u32) -> u64 {
        self.fail_table[i as usize].byte_size()
    }

    /// Indices of faults March C- detects. The classic result holds in
    /// the model: all SAF/TF/CFin faults are detected, so this is the
    /// full universe.
    pub fn detectable_faults(&self) -> &[u32] {
        &self.detectable
    }

    /// March-test fault coverage: detected / modeled.
    pub fn coverage(&self) -> f64 {
        self.detectable.len() as f64 / self.faults.len().max(1) as f64
    }

    /// Ranks candidate memory faults against observed fail data, best
    /// first (ties by fault index): Jaccard similarity over the exact
    /// `(element, syndrome)` entry sets.
    ///
    /// Backed by the `(element, syndrome)` → fault posting-list index —
    /// only candidates sharing an observed syndrome entry are scored,
    /// everything else is a provable `0.0` — and bit-identical to the
    /// retained [`diagnose_linear`](Self::diagnose_linear) scan
    /// (proptest-enforced).
    pub fn diagnose(&self, observed: &FailData) -> Vec<MarchCandidate> {
        let raw = observed.entries();
        let mut out = Vec::with_capacity(self.fail_table.len());
        if raw.is_empty() {
            // PASS: undetectable candidates score 1.0, everything else
            // 0.0; each class stays in fault-index (= tie) order.
            for score_of_empty in [true, false] {
                for (i, predicted) in self.fail_table.iter().enumerate() {
                    if predicted.is_pass() == score_of_empty {
                        out.push(MarchCandidate {
                            fault_index: i as u32,
                            fault: self.faults[i],
                            score: if score_of_empty { 1.0 } else { 0.0 },
                        });
                    }
                }
            }
            return out;
        }
        // The linear scan tests membership per predicted entry, so each
        // distinct observed entry contributes once to the intersection.
        let mut dedup: Vec<FailEntry> = Vec::with_capacity(raw.len());
        for &e in raw {
            if !dedup.contains(&e) {
                dedup.push(e);
            }
        }
        let hits = self.index.intersect(&dedup);
        let mut touched: Vec<(u32, f64)> = hits
            .iter()
            .map(|&(slot, inter)| {
                let union = self.index.predicted_len(slot) as usize + raw.len() - inter as usize;
                (slot, inter as f64 / union as f64)
            })
            .collect();
        touched.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(slot, score) in &touched {
            out.push(MarchCandidate {
                fault_index: slot,
                fault: self.faults[slot as usize],
                score,
            });
        }
        // Zero tail in fault-index order; `hits` is ascending by slot.
        let mut next_hit = hits.iter().map(|&(slot, _)| slot).peekable();
        for (i, &fault) in self.faults.iter().enumerate() {
            if next_hit.peek() == Some(&(i as u32)) {
                next_hit.next();
            } else {
                out.push(MarchCandidate {
                    fault_index: i as u32,
                    fault,
                    score: 0.0,
                });
            }
        }
        out
    }

    /// The historical linear Jaccard scan over every candidate, kept as
    /// the reference implementation [`diagnose`](Self::diagnose) must
    /// stay `PartialEq`-identical to.
    pub fn diagnose_linear(&self, observed: &FailData) -> Vec<MarchCandidate> {
        let observed_entries = observed.entries();
        let mut out: Vec<MarchCandidate> = self
            .fail_table
            .iter()
            .enumerate()
            .map(|(i, predicted)| {
                let predicted = predicted.entries();
                let score = if predicted.is_empty() && observed_entries.is_empty() {
                    1.0
                } else {
                    let inter = predicted
                        .iter()
                        .filter(|e| observed_entries.contains(e))
                        .count();
                    let union = predicted.len() + observed_entries.len() - inter;
                    if union == 0 {
                        1.0
                    } else {
                        inter as f64 / union as f64
                    }
                };
                MarchCandidate {
                    fault_index: i as u32,
                    fault: self.faults[i],
                    score,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.fault_index.cmp(&b.fault_index))
        });
        out
    }

    /// Ranks the observation and condenses the placement of fault `i`
    /// into a [`DiagnosisSummary`] — one diagnosis serving consumers
    /// that need candidate count, rank class and localization together.
    pub fn diagnose_summary(&self, i: u32, observed: &FailData) -> DiagnosisSummary {
        let ranked = self.diagnose(observed);
        summarize(&ranked, |c| c.fault_index == i, |c| c.score)
    }

    /// Whether diagnosis of fault `i`'s own fail data ranks fault `i` in
    /// the top-scoring equivalence class — the same localization
    /// criterion the logic family applies.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn localizes(&self, i: u32) -> bool {
        self.localizes_observed(i, &self.fail_table[i as usize])
    }

    /// [`localizes`](Self::localizes) against an explicit observed
    /// payload — the partial-fail-memory hook: the payload may be a
    /// truncated, window-lost or corrupted variant of fault `i`'s fail
    /// data, and diagnosis ranks from whatever survived instead of
    /// erroring.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn localizes_observed(&self, i: u32, observed: &FailData) -> bool {
        self.diagnose_summary(i, observed).localized
    }

    /// Rank (1-based) of fault `i` in the diagnosis of its own fail
    /// data, counting equivalence classes by score; `None` when absent.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn true_fault_rank(&self, i: u32) -> Option<usize> {
        self.true_fault_rank_observed(i, &self.fail_table[i as usize])
    }

    /// [`true_fault_rank`](Self::true_fault_rank) against an explicit
    /// observed payload — how far localization degrades when diagnosis
    /// sees a partial or corrupted fail memory.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn true_fault_rank_observed(&self, i: u32, observed: &FailData) -> Option<usize> {
        self.diagnose_summary(i, observed).rank
    }
}

/// Runs March C- over the (possibly faulty) SRAM, folding read
/// mismatches into one `(element, syndrome)` [`FailEntry`] per failing
/// element.
fn run_march(config: &SramConfig, fault: Option<MarchFault>) -> FailData {
    let mut mem = FaultySram::new(config, fault);
    let mask = mem.mask;
    let mut fail = FailData::new();
    for (element, spec) in MARCH_C_MINUS.iter().enumerate() {
        let mut sig = FNV_OFFSET;
        let mut failed = false;
        let mut visit = |mem: &mut FaultySram, addr: u32| {
            if let Some(ones) = spec.read_ones {
                let expected = if ones { mask } else { 0 };
                let diff = mem.read(addr) ^ expected;
                if diff != 0 {
                    failed = true;
                    sig = fold_syndrome(sig, addr, diff);
                }
            }
            if let Some(ones) = spec.write_ones {
                mem.write(addr, if ones { mask } else { 0 });
            }
        };
        if spec.descending {
            for addr in (0..config.words).rev() {
                visit(&mut mem, addr);
            }
        } else {
            for addr in 0..config.words {
                visit(&mut mem, addr);
            }
        }
        if failed {
            fail.push(element as u32, sig);
        }
    }
    fail
}

/// The syndrome entries of one observed march run — exposed for tests
/// and for callers that replay a run instead of using the dictionary.
pub fn march_fail_data(config: &SramConfig, fault: Option<MarchFault>) -> FailData {
    run_march(config, fault)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MarchTest {
        MarchTest::build(SramConfig { words: 8, bits: 4 }).expect("model builds")
    }

    #[test]
    fn golden_march_passes() {
        let cfg = SramConfig::default();
        assert!(march_fail_data(&cfg, None).is_pass());
    }

    #[test]
    fn march_c_minus_detects_every_modeled_fault() {
        let m = small();
        // 8×4 = 32 cells: 4 single-cell faults each + 31 coupling pairs.
        assert_eq!(m.num_faults(), 32 * 4 + 31);
        assert_eq!(m.detectable_faults().len(), m.num_faults());
        assert_eq!(m.coverage(), 1.0);
    }

    #[test]
    fn fault_classes_fail_their_characteristic_elements() {
        let m = small();
        let elements_of = |kind, cell| {
            let idx = m
                .faults
                .iter()
                .position(|f| f.kind == kind && f.cell == cell)
                .expect("fault enumerated") as u32;
            m.fail_data(idx)
                .entries()
                .iter()
                .map(|e| e.window)
                .collect::<Vec<_>>()
        };
        // SAF1 already corrupts the r0 of element 1; SAF0 first shows in
        // the r1 of element 2.
        assert!(elements_of(MarchFaultKind::StuckAt1, 5).contains(&1));
        assert!(elements_of(MarchFaultKind::StuckAt0, 5).contains(&2));
        // A cell that cannot rise reads 0 where 1 is expected.
        assert!(elements_of(MarchFaultKind::TransitionRise, 5).contains(&2));
        // A cell that cannot fall reads 1 where 0 is expected.
        assert!(elements_of(MarchFaultKind::TransitionFall, 5).contains(&3));
    }

    #[test]
    fn uploads_are_small_and_untruncated() {
        let m = small();
        for &i in m.detectable_faults() {
            let fd = m.fail_data(i);
            assert!(!fd.is_truncated());
            assert!(fd.entries().len() <= 6, "one entry per march element");
            assert!(m.fail_bytes(i) > 0);
            for pair in fd.entries().windows(2) {
                assert!(pair[0].window < pair[1].window, "entries in element order");
            }
        }
    }

    #[test]
    fn every_fault_localizes_in_its_own_syndrome() {
        let m = small();
        for &i in m.detectable_faults() {
            assert!(m.localizes(i), "fault {i} must rank top on its own data");
            let rank = m.true_fault_rank(i).expect("present in ranking");
            assert_eq!(rank, 1);
        }
    }

    #[test]
    fn syndromes_distinguish_up_to_true_equivalences() {
        // SAF0 and TF-rise are behaviourally identical under March C-
        // (the cell never holds a 1 either way), and a same-word CFin
        // victim mimics them too — genuine ambiguous-response classes no
        // syndrome can split. Everything else must resolve uniquely.
        let m = small();
        let mut unique = 0usize;
        for &i in m.detectable_faults() {
            let ranked = m.diagnose(m.fail_data(i));
            let top = ranked[0].score;
            let class = ranked.iter().take_while(|c| c.score == top).count();
            assert!(
                class <= 3,
                "fault {i}: equivalence class of {class} exceeds the known SAF0/TF↑/CFin tie"
            );
            if class == 1 {
                unique += 1;
            }
        }
        assert!(
            unique * 10 >= m.detectable_faults().len() * 4,
            "at least 40% of faults uniquely identified, got {unique}/{}",
            m.detectable_faults().len()
        );
    }

    #[test]
    fn coupling_crosses_word_boundaries() {
        // bits=4: cell 3 (word 0, bit 3) is victim of aggressor cell 4
        // (word 1, bit 0) — the flip lands in another word.
        let cfg = SramConfig { words: 4, bits: 4 };
        let fd = march_fail_data(
            &cfg,
            Some(MarchFault {
                kind: MarchFaultKind::CouplingInv,
                cell: 3,
            }),
        );
        assert!(!fd.is_pass());
    }

    #[test]
    fn geometry_validation_is_typed() {
        assert_eq!(
            MarchTest::build(SramConfig { words: 0, bits: 8 }).err(),
            Some(MarchError::ZeroWords)
        );
        assert_eq!(
            MarchTest::build(SramConfig { words: 8, bits: 0 }).err(),
            Some(MarchError::ZeroBits)
        );
        assert_eq!(
            MarchTest::build(SramConfig { words: 8, bits: 65 }).err(),
            Some(MarchError::WordTooWide { bits: 65 })
        );
        assert_eq!(
            MarchTest::build(SramConfig {
                words: 1 << 16,
                bits: 64
            })
            .err(),
            Some(MarchError::TooManyCells { cells: 1 << 22 })
        );
    }

    #[test]
    fn indexed_diagnose_matches_linear() {
        let m = small();
        let pass = FailData::new();
        assert_eq!(m.diagnose(&pass), m.diagnose_linear(&pass));
        for &i in m.detectable_faults().iter().step_by(7) {
            let fd = m.fail_data(i);
            assert_eq!(m.diagnose(fd), m.diagnose_linear(fd), "fault {i}");
            // Impaired payloads take the same code path.
            let lost = fd.without_window_slot(1);
            assert_eq!(m.diagnose(&lost), m.diagnose_linear(&lost), "fault {i} lost");
            let corrupt = fd.with_corrupted_window(i as u8);
            assert_eq!(
                m.diagnose(&corrupt),
                m.diagnose_linear(&corrupt),
                "fault {i} corrupt"
            );
        }
    }

    #[test]
    fn summary_agrees_with_full_ranking() {
        let m = small();
        for &i in m.detectable_faults().iter().step_by(11) {
            let fd = m.fail_data(i);
            let s = m.diagnose_summary(i, fd);
            assert_eq!(s.candidates, m.num_faults());
            assert_eq!(s.localized, m.localizes(i));
            assert_eq!(Some(s), m.true_fault_rank(i).map(|r| {
                DiagnosisSummary {
                    candidates: m.num_faults(),
                    rank: Some(r),
                    localized: s.localized,
                }
            }));
        }
    }

    #[test]
    fn family_labels_are_stable() {
        assert_eq!(CutFamily::Logic.label(), "logic");
        assert_eq!(CutFamily::Sram.label(), "sram");
    }
}
