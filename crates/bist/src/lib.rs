// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Logic Built-In Self-Test: STUMPS architecture, mixed-mode sessions and
//! BIST profile generation.
//!
//! This crate models the diagnostic architecture of Fig. 1 of the paper:
//!
//! * [`Lfsr`] — the pseudo-random *test pattern generator* (TPG),
//! * [`Misr`] — the *test response evaluator* (TRE) compacting scan-out
//!   streams into signatures,
//! * [`StumpsSession`] — a full session: LFSR-fed scan chains, intermediate
//!   signature windows, and [`FailData`] collection when signatures mismatch
//!   (the architectural extension of \[9\]/\[10\] for diagnosis),
//! * [`ResumableRun`] — the same session paused and resumed across a
//!   vehicle's shut-off windows (the fleet campaign engine's hook),
//! * [`generate_profiles`] — the **Table I generator**: mixed-mode profiles
//!   combining `N` pseudo-random patterns with deterministic top-off
//!   patterns to reach a coverage target, characterised by fault coverage
//!   `c(b)`, runtime `l(b)` and encoded data size `s(b)`,
//! * [`paper_table1`] — the exact 36 profiles published in the paper,
//!   embedded as a dataset so the case study reproduces the published
//!   numbers bit-exact (our own substrate regenerates the *shape* on open
//!   circuits; see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use eea_bist::paper_table1;
//!
//! let profiles = paper_table1();
//! assert_eq!(profiles.len(), 36);
//! // Profile 1: 500 pseudo-random patterns, 99.83 % coverage, 4.87 ms.
//! assert_eq!(profiles[0].random_patterns, 500);
//! assert!((profiles[0].coverage - 0.9983).abs() < 1e-9);
//! ```

mod diagnosis;
mod fail;
mod lfsr;
mod march;
mod misr;
mod index;
mod paper_data;
mod profile;
mod session_table;
mod stumps;

pub use diagnosis::{Candidate, Diagnoser, DiagnosisSummary};
pub use fail::{FailData, FailDataIntegrity, FailEntry, FAIL_DATA_BYTES, FAIL_ENTRY_BYTES};
pub use lfsr::{Lfsr, UnsupportedLfsrWidthError};
pub use march::{
    march_fail_data, CutFamily, MarchCandidate, MarchError, MarchFault, MarchFaultKind, MarchTest,
    SramConfig,
};
pub use misr::Misr;
pub use paper_data::{paper_table1, PAPER_CUT};
pub use session_table::SessionTable;
pub use profile::{
    generate_profiles, BistProfile, CoverageTarget, PaperCutSpec, ProfileConfig, ProfileError,
};
pub use stumps::{lfsr_pattern_block, ResumableRun, SessionResult, StumpsSession};
