//! Mixed-mode BIST profile generation — the Table I generator.
//!
//! A *profile* fixes the number of pseudo-random patterns (PRPs) and a
//! coverage target; deterministic ATPG top-off patterns close the gap
//! between the random coverage and the target. Each profile is
//! characterised exactly like Table I of the paper:
//!
//! * fault coverage `c(b)`,
//! * session runtime `l(b)` (shift time of all patterns plus the state
//!   restore after test),
//! * encoded data size `s(b)` (compressed deterministic test data plus the
//!   expected intermediate response signatures).
//!
//! The trends of Table I emerge naturally: more PRPs cover more
//! random-testable faults, so fewer deterministic patterns are needed and
//! the stored data shrinks, while the session runtime grows linearly with
//! the pattern count.

use std::error::Error;
use std::fmt;

use eea_atpg::{generate_tests_for, AtpgConfig};
use eea_faultsim::{resolve_threads, FaultUniverse, ParFaultSim, PatternBlock};
use eea_netlist::{Circuit, ScanChains, ScanError};

use crate::lfsr::Lfsr;
use crate::stumps::lfsr_pattern_block;

/// Error from [`generate_profiles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// `prp_counts` is empty — no profile group to generate.
    NoPrpCounts,
    /// `targets` is empty — no profile per group to generate.
    NoTargets,
    /// Scan-chain insertion failed (e.g. zero chains configured).
    Scan(ScanError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NoPrpCounts => write!(f, "need at least one PRP count"),
            ProfileError::NoTargets => write!(f, "need at least one coverage target"),
            ProfileError::Scan(e) => write!(f, "scan insertion: {e}"),
        }
    }
}

impl Error for ProfileError {}

impl From<ScanError> for ProfileError {
    fn from(e: ScanError) -> Self {
        ProfileError::Scan(e)
    }
}

/// One mixed-mode BIST profile, the unit of selection in the paper's design
/// space exploration (at most one profile per ECU).
#[derive(Debug, Clone, PartialEq)]
pub struct BistProfile {
    /// Profile number (1-based, publication order).
    pub id: u32,
    /// Number of pseudo-random patterns.
    pub random_patterns: u64,
    /// Number of deterministic top-off patterns (0 when unknown, e.g. for
    /// the embedded paper dataset).
    pub deterministic_patterns: u64,
    /// Achieved stuck-at fault coverage `c(b)` in `[0, 1]`.
    pub coverage: f64,
    /// Session runtime `l(b)` in milliseconds.
    pub runtime_ms: f64,
    /// Encoded deterministic test data + response data `s(b)` in bytes.
    pub data_bytes: u64,
}

/// Published characteristics of the paper's CUT (see
/// [`PAPER_CUT`](crate::PAPER_CUT)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperCutSpec {
    /// Collapsed stuck-at faults.
    pub collapsed_faults: u64,
    /// Parallel scan chains.
    pub scan_chains: u32,
    /// Longest chain (shift cycles per pattern minus capture).
    pub max_chain_length: u32,
    /// Scan shift frequency in Hz.
    pub test_frequency_hz: u64,
}

/// Coverage target of one profile row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoverageTarget {
    /// Run ATPG to completion — maximum achievable coverage.
    Max,
    /// Stop at `fraction` of the maximum achievable coverage (the open
    /// analog of the paper's absolute 98 %/95 % targets; relative targets
    /// keep the rows distinct regardless of the substrate circuit's
    /// redundancy level).
    OfMax(f64),
}

/// Configuration for [`generate_profiles`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileConfig {
    /// Pseudo-random pattern counts, one group of profiles per count.
    pub prp_counts: Vec<u64>,
    /// Coverage targets per group; each target yields one profile. Two
    /// `Max` entries (as in the paper's rows 1-2 of each group) are
    /// differentiated by distinct ATPG fill seeds.
    pub targets: Vec<CoverageTarget>,
    /// Number of scan chains.
    pub num_chains: usize,
    /// Scan shift frequency in Hz.
    pub shift_frequency_hz: u64,
    /// Number of intermediate-signature windows per session. Following the
    /// strong-windows diagnosis architecture (\[9\] in the paper), the
    /// *count* of stored signatures is fixed and the window spacing scales
    /// with the session length, so the response data does not grow with
    /// the pattern count.
    pub signature_windows: u64,
    /// Bytes per stored intermediate signature.
    pub signature_bytes: u64,
    /// State-restore time after the session, in milliseconds.
    pub restore_ms: f64,
    /// LFSR seed of the TPG.
    pub lfsr_seed: u64,
    /// ATPG settings for the top-off phase.
    pub atpg: AtpgConfig,
    /// Encoded bits per specified care bit (test-data compression model;
    /// > 1 accounts for control overhead of the on-chip decompressor).
    pub bits_per_care_bit: f64,
    /// Fixed per-pattern header bytes in the encoded stream.
    pub pattern_header_bytes: u64,
    /// Worker threads for the fault-simulation phase. `0` means one per
    /// available CPU; the `EEA_THREADS` environment variable overrides
    /// either setting. Profiles are bit-identical at any thread count.
    pub threads: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            prp_counts: vec![500, 1_000, 5_000, 10_000, 20_000],
            targets: vec![
                CoverageTarget::Max,
                CoverageTarget::Max,
                CoverageTarget::OfMax(0.98),
                CoverageTarget::OfMax(0.95),
            ],
            num_chains: 100,
            shift_frequency_hz: 40_000_000,
            signature_windows: 64,
            signature_bytes: 8,
            restore_ms: 0.5,
            lfsr_seed: 0xACE1,
            atpg: AtpgConfig::default(),
            bits_per_care_bit: 1.25,
            pattern_header_bytes: 4,
            threads: 0,
        }
    }
}

/// Generates mixed-mode BIST profiles for `circuit` per `cfg`, in Table I
/// layout: for each PRP count, one profile per coverage target.
///
/// Deterministic: equal inputs produce identical profiles.
///
/// # Errors
///
/// Returns [`ProfileError`] if `cfg.prp_counts` or `cfg.targets` is empty,
/// or if `cfg.num_chains` is zero.
pub fn generate_profiles(
    circuit: &Circuit,
    cfg: &ProfileConfig,
) -> Result<Vec<BistProfile>, ProfileError> {
    if cfg.prp_counts.is_empty() {
        return Err(ProfileError::NoPrpCounts);
    }
    if cfg.targets.is_empty() {
        return Err(ProfileError::NoTargets);
    }
    let chains = ScanChains::balanced(circuit, cfg.num_chains)?;
    let mut counts = cfg.prp_counts.clone();
    counts.sort_unstable();
    counts.dedup();

    // Phase 1: simulate the shared LFSR stream once, snapshotting the
    // detection state at every requested PRP count. Worklist-parallel, with
    // results bit-identical to serial at any thread count.
    let mut universe = FaultUniverse::collapsed(circuit);
    let mut sim = ParFaultSim::new(circuit, resolve_threads(cfg.threads));
    let mut lfsr = Lfsr::new32(cfg.lfsr_seed);
    let mut snapshots: Vec<(u64, FaultUniverse)> = Vec::with_capacity(counts.len());
    let mut done = 0u64;
    for &target in &counts {
        while done < target {
            let count = ((target - done).min(PatternBlock::CAPACITY as u64)) as usize;
            let block = lfsr_pattern_block(circuit, &chains, &mut lfsr, count);
            sim.detect_block(&block, &mut universe);
            done += count as u64;
        }
        snapshots.push((target, universe.clone()));
    }

    // Phase 2: per snapshot and target, run the deterministic top-off.
    let mut profiles = Vec::with_capacity(counts.len() * cfg.targets.len());
    let mut id = 1u32;
    for (prps, snapshot) in &snapshots {
        // The maximum achievable coverage for this PRP count (full ATPG).
        let mut max_universe = snapshot.clone();
        let max_run = generate_tests_for(
            circuit,
            &mut max_universe,
            &AtpgConfig {
                stop_at_coverage: None,
                ..cfg.atpg.clone()
            },
        );
        let max_coverage = max_universe.coverage();

        for (ti, target) in cfg.targets.iter().enumerate() {
            let (run, coverage) = match target {
                CoverageTarget::Max => {
                    if ti == 0 {
                        (max_run.clone(), max_coverage)
                    } else {
                        // A second Max row: same target, different fill seed
                        // (mirrors the paper's two max-coverage variants per
                        // group, which differ slightly in data volume).
                        let mut u = snapshot.clone();
                        let run = generate_tests_for(
                            circuit,
                            &mut u,
                            &AtpgConfig {
                                fill_seed: cfg.atpg.fill_seed ^ (0x5EED << ti),
                                stop_at_coverage: None,
                                ..cfg.atpg.clone()
                            },
                        );
                        let cov = u.coverage();
                        (run, cov)
                    }
                }
                CoverageTarget::OfMax(f) => {
                    let mut u = snapshot.clone();
                    let run = generate_tests_for(
                        circuit,
                        &mut u,
                        &AtpgConfig {
                            stop_at_coverage: Some(f * max_coverage),
                            ..cfg.atpg.clone()
                        },
                    );
                    let cov = u.coverage();
                    (run, cov)
                }
            };
            let det = run.cubes.len() as u64;
            let total_patterns = prps + det;
            let shift_s = chains.test_time_s(total_patterns, cfg.shift_frequency_hz);
            let runtime_ms = shift_s * 1e3 + cfg.restore_ms;
            let det_bytes = ((run.specified_care_bits as f64 * cfg.bits_per_care_bit / 8.0)
                .ceil() as u64)
                + det * cfg.pattern_header_bytes;
            let response_bytes =
                cfg.signature_windows.min(total_patterns.max(1)) * cfg.signature_bytes;
            profiles.push(BistProfile {
                id,
                random_patterns: *prps,
                deterministic_patterns: det,
                coverage,
                runtime_ms,
                data_bytes: det_bytes + response_bytes,
            });
            id += 1;
        }
    }
    Ok(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::{synthesize, SynthConfig};

    fn small_cut() -> Circuit {
        synthesize(&SynthConfig {
            gates: 300,
            inputs: 16,
            dffs: 32,
            seed: 0xC07,
            ..SynthConfig::default()
        }).expect("synthesizes")
    }

    fn quick_cfg() -> ProfileConfig {
        ProfileConfig {
            prp_counts: vec![64, 256, 1024],
            targets: vec![
                CoverageTarget::Max,
                CoverageTarget::OfMax(0.98),
                CoverageTarget::OfMax(0.95),
            ],
            num_chains: 8,
            ..ProfileConfig::default()
        }
    }

    #[test]
    fn generates_expected_grid() {
        let c = small_cut();
        let profiles = generate_profiles(&c, &quick_cfg()).expect("valid config");
        assert_eq!(profiles.len(), 9);
        assert_eq!(profiles[0].id, 1);
        assert_eq!(profiles[8].id, 9);
        assert_eq!(profiles[0].random_patterns, 64);
        assert_eq!(profiles[8].random_patterns, 1024);
    }

    #[test]
    fn table1_trends_hold() {
        let c = small_cut();
        let profiles = generate_profiles(&c, &quick_cfg()).expect("valid config");
        // Within a group: Max coverage >= 98 % target >= 95 % target.
        for g in profiles.chunks(3) {
            assert!(g[0].coverage >= g[1].coverage - 1e-9);
            assert!(g[1].coverage >= g[2].coverage - 1e-9);
            // Lower targets need less data.
            assert!(g[0].data_bytes >= g[2].data_bytes);
            // Runtime dominated by PRPs, but Max has most top-off patterns.
            assert!(g[0].runtime_ms >= g[2].runtime_ms - 1e-9);
        }
        // Across groups at Max: more PRPs -> more runtime.
        assert!(profiles[3].runtime_ms > profiles[0].runtime_ms);
        assert!(profiles[6].runtime_ms > profiles[3].runtime_ms);
        // Across groups: deterministic data shrinks with more PRPs (more
        // faults covered randomly). Compare the 95 % rows.
        assert!(profiles[8].deterministic_patterns <= profiles[2].deterministic_patterns);
    }

    #[test]
    fn deterministic_generation() {
        let c = small_cut();
        let a = generate_profiles(&c, &quick_cfg()).expect("valid config");
        let b = generate_profiles(&c, &quick_cfg()).expect("valid config");
        assert_eq!(a, b);
    }

    #[test]
    fn runtime_model_matches_scan_math() {
        let c = small_cut();
        let cfg = quick_cfg();
        let profiles = generate_profiles(&c, &cfg).expect("valid config");
        let chains = ScanChains::balanced(&c, cfg.num_chains).expect("at least one chain");
        for p in &profiles {
            let expected = chains
                .test_time_s(p.random_patterns + p.deterministic_patterns, cfg.shift_frequency_hz)
                * 1e3
                + cfg.restore_ms;
            assert!((p.runtime_ms - expected).abs() < 1e-9);
        }
    }
}
