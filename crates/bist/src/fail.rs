//! Fail data: the diagnostic payload a BIST session leaves behind.
//!
//! Whenever an intermediate signature differs from the expected *response
//! data*, the observed signature is stored together with its window index.
//! The paper notes the fail data is tiny — "roughly 638 Bytes" per ECU —
//! and is shipped to the central gateway where task `b^R` aggregates it for
//! later chip-level logic diagnosis.

use std::fmt;

/// Fixed upper bound of the fail-data payload per BIST session, as reported
/// in Section IV-A of the paper (638 bytes for the industrial CUT).
pub const FAIL_DATA_BYTES: u64 = 638;

/// Serialized size of one [`FailEntry`] (4-byte window index + 8-byte
/// signature) — the granularity every byte cap on fail data rounds down
/// to, here and in the transfer layer's channel truncation.
pub const FAIL_ENTRY_BYTES: u64 = 12;

/// Integrity classification of a fail-data payload as it reaches
/// diagnosis — the widening of the old boolean
/// [`FailData::is_truncated`] into the four ways a payload can be
/// incomplete or wrong. `Complete` and `TruncatedAtCap` are
/// self-detectable from the payload ([`FailData::integrity`]);
/// `WindowLost` and `CorruptedSyndrome` are channel facts the transfer
/// layer records alongside the payload (a lost or flipped entry is
/// indistinguishable from genuine fail data by inspection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailDataIntegrity {
    /// Every recorded window survived to diagnosis.
    Complete,
    /// The bounded fail memory (or a channel truncation cap) dropped a
    /// suffix of the recorded windows.
    TruncatedAtCap,
    /// One failing window was lost in transit (interrupted upload).
    WindowLost,
    /// One entry arrived with a corrupted window index/syndrome.
    CorruptedSyndrome,
}

/// One failing signature window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailEntry {
    /// Index of the intermediate-signature window in the test sequence —
    /// the "signature index to identify the faulty signature".
    pub window: u32,
    /// The observed (faulty) signature.
    pub signature: u64,
}

/// The fail memory of one BIST session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailData {
    entries: Vec<FailEntry>,
}

impl FailData {
    /// Empty fail memory (a passing session).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a failing window.
    pub fn push(&mut self, window: u32, signature: u64) {
        self.entries.push(FailEntry { window, signature });
    }

    /// Recorded entries in window order.
    pub fn entries(&self) -> &[FailEntry] {
        &self.entries
    }

    /// Whether the session passed (no mismatching window).
    pub fn is_pass(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size of this fail data in bytes (4-byte window index +
    /// 8-byte signature per entry), clamped to [`FAIL_DATA_BYTES`] — the
    /// on-chip fail memory is bounded, so at most the first windows that fit
    /// are kept.
    pub fn byte_size(&self) -> u64 {
        self.unclamped_byte_size().min(FAIL_DATA_BYTES)
    }

    /// Whether the bounded fail memory silently dropped entries: the
    /// serialized size of *all* recorded windows exceeds
    /// [`FAIL_DATA_BYTES`], so [`byte_size`](Self::byte_size) clamped.
    /// Truncated fail data reaches the gateway incomplete — diagnosis
    /// runs on a prefix of the failing windows, the first slice of the
    /// paper's ambiguous-response problem — so campaign snapshots count
    /// these uploads separately instead of hiding the clamp.
    pub fn is_truncated(&self) -> bool {
        self.unclamped_byte_size() > FAIL_DATA_BYTES
    }

    /// Serialized size with no fail-memory bound applied.
    fn unclamped_byte_size(&self) -> u64 {
        (self.entries.len() as u64) * FAIL_ENTRY_BYTES
    }

    /// Self-detectable integrity of this payload: [`FailDataIntegrity::TruncatedAtCap`]
    /// when the bounded fail memory clamped (the enum form of
    /// [`is_truncated`](Self::is_truncated)), [`FailDataIntegrity::Complete`]
    /// otherwise. Channel-inflicted window loss and syndrome corruption
    /// cannot be detected from the payload alone — the transfer layer
    /// records those variants out of band.
    pub fn integrity(&self) -> FailDataIntegrity {
        if self.is_truncated() {
            FailDataIntegrity::TruncatedAtCap
        } else {
            FailDataIntegrity::Complete
        }
    }

    /// The payload after a transfer capped at `cap_bytes`: the longest
    /// whole-entry prefix that fits. A cap at or above the serialized size
    /// is the identity.
    pub fn truncated_to(&self, cap_bytes: u64) -> FailData {
        let keep = usize::try_from(cap_bytes / FAIL_ENTRY_BYTES)
            .unwrap_or(usize::MAX)
            .min(self.entries.len());
        FailData {
            entries: self.entries[..keep].to_vec(),
        }
    }

    /// The payload after losing one failing window in transit: entry
    /// `slot % len` is dropped. The identity on a passing (empty) payload —
    /// there is nothing to lose.
    pub fn without_window_slot(&self, slot: usize) -> FailData {
        if self.entries.is_empty() {
            return self.clone();
        }
        let drop = slot % self.entries.len();
        let mut entries = self.entries.clone();
        entries.remove(drop);
        FailData { entries }
    }

    /// The payload after one entry arrives corrupted: entry `salt % len`
    /// gets its window index flipped by a low bit pattern (diagnosis keys
    /// on window indices, so a syndrome-only flip would be invisible to
    /// the logic path) and its signature perturbed. Entries are re-sorted
    /// by window and window-deduplicated afterwards — diagnosis requires
    /// the observed window set sorted and duplicate-free. The identity on
    /// a passing (empty) payload.
    pub fn with_corrupted_window(&self, salt: u8) -> FailData {
        if self.entries.is_empty() {
            return self.clone();
        }
        let mut entries = self.entries.clone();
        let hit = usize::from(salt) % entries.len();
        let flip = 1 + u32::from(salt & 7);
        entries[hit].window ^= flip;
        entries[hit].signature ^= 0x5A5A_5A5A_5A5A_5A5A_u64.rotate_left(u32::from(salt));
        entries.sort_by_key(|e| e.window);
        entries.dedup_by_key(|e| e.window);
        FailData { entries }
    }
}

impl fmt::Display for FailData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pass() {
            write!(f, "PASS")
        } else {
            write!(f, "FAIL ({} windows)", self.entries.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_and_fail() {
        let mut fd = FailData::new();
        assert!(fd.is_pass());
        assert_eq!(fd.to_string(), "PASS");
        fd.push(3, 0xDEAD);
        assert!(!fd.is_pass());
        assert_eq!(fd.entries()[0].window, 3);
        assert_eq!(fd.to_string(), "FAIL (1 windows)");
    }

    #[test]
    fn byte_size_clamped() {
        let mut fd = FailData::new();
        for i in 0..1000 {
            fd.push(i, u64::from(i));
        }
        assert_eq!(fd.byte_size(), FAIL_DATA_BYTES);
        let mut small = FailData::new();
        small.push(0, 1);
        assert_eq!(small.byte_size(), 12);
    }

    /// Boundary at exactly [`FAIL_DATA_BYTES`]: 638 is not a multiple of the
    /// 12-byte entry size, so the largest untruncated payload is 53 entries
    /// (636 bytes) and the 54th entry (648 bytes raw) is the first to clamp.
    #[test]
    fn truncation_boundary_at_fail_data_bytes() {
        let max_whole_entries = (FAIL_DATA_BYTES / 12) as u32; // 53
        let mut fd = FailData::new();
        for i in 0..max_whole_entries {
            fd.push(i, u64::from(i));
        }
        assert_eq!(fd.byte_size(), u64::from(max_whole_entries) * 12); // 636
        assert!(fd.byte_size() < FAIL_DATA_BYTES);
        assert!(!fd.is_truncated());

        fd.push(max_whole_entries, 0xBEEF);
        assert!(fd.is_truncated());
        assert_eq!(fd.byte_size(), FAIL_DATA_BYTES); // clamped, not 648

        assert!(!FailData::new().is_truncated());
    }

    #[test]
    fn integrity_widens_is_truncated() {
        let mut fd = FailData::new();
        assert_eq!(fd.integrity(), FailDataIntegrity::Complete);
        for i in 0..54 {
            fd.push(i, u64::from(i));
        }
        assert!(fd.is_truncated());
        assert_eq!(fd.integrity(), FailDataIntegrity::TruncatedAtCap);
    }

    #[test]
    fn truncated_to_keeps_whole_entry_prefix() {
        let mut fd = FailData::new();
        for i in 0..10 {
            fd.push(i, u64::from(i) * 3);
        }
        let capped = fd.truncated_to(40); // 3 whole 12-byte entries fit
        assert_eq!(capped.entries().len(), 3);
        assert_eq!(capped.entries(), &fd.entries()[..3]);
        // A cap at or above the payload is the identity.
        assert_eq!(fd.truncated_to(120), fd);
        assert_eq!(fd.truncated_to(u64::MAX), fd);
        // Sub-entry caps yield an empty (pass-looking) payload.
        assert!(fd.truncated_to(11).is_pass());
    }

    #[test]
    fn window_loss_drops_exactly_one_entry() {
        let mut fd = FailData::new();
        for i in 0..5 {
            fd.push(i * 2, u64::from(i));
        }
        let lost = fd.without_window_slot(7); // 7 % 5 = 2 → window 4 gone
        assert_eq!(lost.entries().len(), 4);
        assert!(lost.entries().iter().all(|e| e.window != 4));
        // Zero-entry fail memory: nothing to lose, identity.
        assert_eq!(FailData::new().without_window_slot(3), FailData::new());
    }

    #[test]
    fn corruption_flips_a_window_and_keeps_the_set_sorted() {
        let mut fd = FailData::new();
        for i in 0..6 {
            fd.push(i * 4, u64::from(i));
        }
        for salt in 0..32 {
            let corrupted = fd.with_corrupted_window(salt);
            assert_ne!(corrupted, fd, "salt {salt} must alter the payload");
            let windows: Vec<u32> = corrupted.entries().iter().map(|e| e.window).collect();
            let mut sorted = windows.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(windows, sorted, "salt {salt}: observed set unsorted");
        }
        // Zero-entry fail memory: identity.
        assert_eq!(FailData::new().with_corrupted_window(9), FailData::new());
    }

    /// Corruption at exactly the [`FAIL_DATA_BYTES`] cap: a payload
    /// clamped to the 53-entry boundary stays sorted/deduplicated after a
    /// window flip, and the cap transform composes with corruption.
    #[test]
    fn corruption_at_exact_truncation_cap() {
        let mut fd = FailData::new();
        for i in 0..60 {
            fd.push(i, u64::from(i));
        }
        let capped = fd.truncated_to(FAIL_DATA_BYTES);
        assert_eq!(capped.entries().len(), 53); // 636 of 638 bytes
        assert!(
            !capped.is_truncated(),
            "post-cap payload self-reports whole"
        );
        let corrupted = capped.with_corrupted_window(11);
        assert!(corrupted.entries().len() <= 53);
        assert!(corrupted.byte_size() <= FAIL_DATA_BYTES);
        let windows: Vec<u32> = corrupted.entries().iter().map(|e| e.window).collect();
        let mut sorted = windows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(windows, sorted);
    }
}
