//! Fail data: the diagnostic payload a BIST session leaves behind.
//!
//! Whenever an intermediate signature differs from the expected *response
//! data*, the observed signature is stored together with its window index.
//! The paper notes the fail data is tiny — "roughly 638 Bytes" per ECU —
//! and is shipped to the central gateway where task `b^R` aggregates it for
//! later chip-level logic diagnosis.

use std::fmt;

/// Fixed upper bound of the fail-data payload per BIST session, as reported
/// in Section IV-A of the paper (638 bytes for the industrial CUT).
pub const FAIL_DATA_BYTES: u64 = 638;

/// One failing signature window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailEntry {
    /// Index of the intermediate-signature window in the test sequence —
    /// the "signature index to identify the faulty signature".
    pub window: u32,
    /// The observed (faulty) signature.
    pub signature: u64,
}

/// The fail memory of one BIST session.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailData {
    entries: Vec<FailEntry>,
}

impl FailData {
    /// Empty fail memory (a passing session).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a failing window.
    pub fn push(&mut self, window: u32, signature: u64) {
        self.entries.push(FailEntry { window, signature });
    }

    /// Recorded entries in window order.
    pub fn entries(&self) -> &[FailEntry] {
        &self.entries
    }

    /// Whether the session passed (no mismatching window).
    pub fn is_pass(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size of this fail data in bytes (4-byte window index +
    /// 8-byte signature per entry), clamped to [`FAIL_DATA_BYTES`] — the
    /// on-chip fail memory is bounded, so at most the first windows that fit
    /// are kept.
    pub fn byte_size(&self) -> u64 {
        self.unclamped_byte_size().min(FAIL_DATA_BYTES)
    }

    /// Whether the bounded fail memory silently dropped entries: the
    /// serialized size of *all* recorded windows exceeds
    /// [`FAIL_DATA_BYTES`], so [`byte_size`](Self::byte_size) clamped.
    /// Truncated fail data reaches the gateway incomplete — diagnosis
    /// runs on a prefix of the failing windows, the first slice of the
    /// paper's ambiguous-response problem — so campaign snapshots count
    /// these uploads separately instead of hiding the clamp.
    pub fn is_truncated(&self) -> bool {
        self.unclamped_byte_size() > FAIL_DATA_BYTES
    }

    /// Serialized size with no fail-memory bound applied.
    fn unclamped_byte_size(&self) -> u64 {
        (self.entries.len() as u64) * 12
    }
}

impl fmt::Display for FailData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pass() {
            write!(f, "PASS")
        } else {
            write!(f, "FAIL ({} windows)", self.entries.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_and_fail() {
        let mut fd = FailData::new();
        assert!(fd.is_pass());
        assert_eq!(fd.to_string(), "PASS");
        fd.push(3, 0xDEAD);
        assert!(!fd.is_pass());
        assert_eq!(fd.entries()[0].window, 3);
        assert_eq!(fd.to_string(), "FAIL (1 windows)");
    }

    #[test]
    fn byte_size_clamped() {
        let mut fd = FailData::new();
        for i in 0..1000 {
            fd.push(i, u64::from(i));
        }
        assert_eq!(fd.byte_size(), FAIL_DATA_BYTES);
        let mut small = FailData::new();
        small.push(0, 1);
        assert_eq!(small.byte_size(), 12);
    }

    /// Boundary at exactly [`FAIL_DATA_BYTES`]: 638 is not a multiple of the
    /// 12-byte entry size, so the largest untruncated payload is 53 entries
    /// (636 bytes) and the 54th entry (648 bytes raw) is the first to clamp.
    #[test]
    fn truncation_boundary_at_fail_data_bytes() {
        let max_whole_entries = (FAIL_DATA_BYTES / 12) as u32; // 53
        let mut fd = FailData::new();
        for i in 0..max_whole_entries {
            fd.push(i, u64::from(i));
        }
        assert_eq!(fd.byte_size(), u64::from(max_whole_entries) * 12); // 636
        assert!(fd.byte_size() < FAIL_DATA_BYTES);
        assert!(!fd.is_truncated());

        fd.push(max_whole_entries, 0xBEEF);
        assert!(fd.is_truncated());
        assert_eq!(fd.byte_size(), FAIL_DATA_BYTES); // clamped, not 648

        assert!(!FailData::new().is_truncated());
    }
}
