//! Inverted posting-list index over per-candidate key sets.
//!
//! Shared by the logic [`Diagnoser`](crate::Diagnoser) (keys are failing
//! *window* indices) and the SRAM [`MarchTest`](crate::MarchTest) (keys
//! are full [`FailEntry`](crate::FailEntry) syndromes). An observed
//! upload touches only the candidates that share at least one key with
//! it; every untouched candidate has an empty intersection, so a ranking
//! built from the touched set plus a zero-score tail is provably
//! identical to the historical linear scan over all candidates.

use std::collections::HashMap;
use std::hash::Hash;

/// Posting-list index mapping each key to the candidate slots whose
/// predicted set contains it.
#[derive(Debug)]
pub(crate) struct InvertedIndex<K> {
    postings: HashMap<K, Vec<u32>>,
    /// Predicted-set length per candidate slot (the `|predicted|` term of
    /// the Jaccard denominator).
    predicted_len: Vec<u32>,
}

impl<K: Eq + Hash + Copy> InvertedIndex<K> {
    /// Builds the index from per-slot predicted key sets. A key occurring
    /// twice in one set posts the slot twice — intersection counts then
    /// match a linear scan that counts per occurrence.
    pub(crate) fn build<'a, I, S>(sets: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = &'a K>,
        K: 'a,
    {
        let mut postings: HashMap<K, Vec<u32>> = HashMap::new();
        let mut predicted_len = Vec::new();
        for (slot, set) in sets.into_iter().enumerate() {
            let mut len = 0u32;
            for &key in set {
                postings.entry(key).or_default().push(slot as u32);
                len += 1;
            }
            predicted_len.push(len);
        }
        InvertedIndex {
            postings,
            predicted_len,
        }
    }

    /// Predicted-set length of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range (caller bug, not data-reachable).
    pub(crate) fn predicted_len(&self, slot: u32) -> u32 {
        self.predicted_len[slot as usize]
    }

    /// Intersection counts against the **deduplicated** observed keys:
    /// returns `(slot, |predicted ∩ observed|)` for every slot with a
    /// non-empty intersection, ascending by slot.
    pub(crate) fn intersect(&self, observed: &[K]) -> Vec<(u32, u32)> {
        let mut counts = vec![0u32; self.predicted_len.len()];
        let mut touched: Vec<u32> = Vec::new();
        for key in observed {
            if let Some(slots) = self.postings.get(key) {
                for &slot in slots {
                    if counts[slot as usize] == 0 {
                        touched.push(slot);
                    }
                    counts[slot as usize] += 1;
                }
            }
        }
        touched.sort_unstable();
        touched
            .iter()
            .map(|&slot| (slot, counts[slot as usize]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_counts_match_brute_force() {
        let sets: Vec<Vec<u32>> = vec![vec![0, 2, 5], vec![], vec![2], vec![1, 2, 5, 9]];
        let idx = InvertedIndex::build(sets.iter());
        assert_eq!(idx.predicted_len(3), 4);
        let observed = [2u32, 5, 7];
        let hits = idx.intersect(&observed);
        assert_eq!(hits, vec![(0, 2), (2, 1), (3, 2)]);
        // Queries are independent.
        assert_eq!(idx.intersect(&[9u32]), vec![(3, 1)]);
        assert_eq!(idx.intersect(&[]), vec![]);
    }

    #[test]
    fn duplicate_predicted_keys_count_per_occurrence() {
        let sets: Vec<Vec<u32>> = vec![vec![4, 4]];
        let idx = InvertedIndex::build(sets.iter());
        assert_eq!(idx.predicted_len(0), 2);
        assert_eq!(idx.intersect(&[4u32]), vec![(0, 2)]);
    }
}
