//! One-pass wide-word construction of the per-fault session table.
//!
//! Both the fleet's `CutModel` and the [`Diagnoser`](crate::Diagnoser)
//! need, for every collapsed stuck-at fault, what the configured STUMPS
//! session would record: the fault's [`FailData`] (which complete windows
//! end in a corrupted signature, and with which signature) and its
//! *detect-window set* (which windows contain at least one detecting
//! pattern — the diagnosis dictionary key). Historically each consumer
//! replayed a **full session per fault** (`O(|faults|)` good-machine
//! simulations plus MISR compaction), and each consumer did so
//! independently — the dictionary was paid twice.
//!
//! [`SessionTable::build`] computes both products in **one walk of the
//! pattern stream**. The trick is MISR linearity plus the per-window
//! reset discipline of the strong-windows scheme:
//!
//! * the faulty MISR stream differs from the golden stream only by an
//!   extra `absorb(1)` after each *detecting* pattern
//!   ([`StumpsSession::run_with_fault`](crate::StumpsSession::run_with_fault)),
//!   and
//! * the MISR resets at every complete-window boundary,
//!
//! so a window with no detections is signature-identical to golden (no
//! fail entry, nothing to compute), and a window **with** detections can
//! be replayed exactly from the precomputed packed good-response words of
//! its `window` patterns — a handful of `absorb` calls, no re-simulation.
//! The per-fault work then collapses to the PPSFP detect-mask cone walk
//! (good machine simulated **once per block**, shared by all faults) plus
//! tiny per-affected-window replays: bit-identical to the per-fault
//! session replay at a fraction of the cost.
//!
//! Fault chunks fold in parallel (`std::thread::scope`) over contiguous
//! index ranges with an index-order merge; per-fault results are
//! independent, so the table is **bit-identical at any thread count**.
//! [`SessionTable::build_serial_replay`] keeps the historical
//! one-session-per-fault construction as the benchmark baseline and the
//! equivalence oracle.

use eea_faultsim::{resolve_threads, Fault, FaultSim, FaultUniverse, GoodSim, PatternBlock};
use eea_netlist::{Circuit, ScanChains};

use crate::fail::FailData;
use crate::lfsr::Lfsr;
use crate::misr::Misr;
use crate::stumps::{lfsr_pattern_block, SessionResult, StumpsSession};

/// Per-fault products of one STUMPS session configuration, built in a
/// single wide-word sweep of the pattern stream.
///
/// Holds, for every collapsed fault of the circuit:
///
/// * its [`FailData`] under the session (identical to
///   [`StumpsSession::run_with_fault`](crate::StumpsSession::run_with_fault)),
/// * its detect-window set (every window containing a detecting pattern,
///   including a partial trailing window — the diagnosis dictionary
///   entry; this can differ from the fail-data window set through MISR
///   aliasing and the missing signature of a partial window).
#[derive(Debug)]
pub struct SessionTable {
    faults: Vec<Fault>,
    fail_table: Vec<FailData>,
    detect_windows: Vec<Vec<u32>>,
    /// Complete signature windows of the session (`patterns / window`).
    windows: u32,
    golden: SessionResult,
}

/// Per-fault sweep products of one worker chunk.
type SweepRows = Vec<(Vec<u32>, FailData)>;

/// The golden-session precomputation shared by every fault: materialized
/// pattern blocks, per-pattern packed response words (the exact MISR
/// absorb stream of one pattern), and the per-window golden signatures.
struct GoldenPass {
    blocks: Vec<PatternBlock>,
    /// `stride` packed 64-bit words per pattern, pattern-major.
    packed: Vec<u64>,
    stride: usize,
    signatures: Vec<u64>,
    final_signature: u64,
}

impl SessionTable {
    /// Builds the table in one wide-word PPSFP sweep, folding fault
    /// chunks over `threads` workers (`0` = auto, honouring
    /// `EEA_THREADS`). Bit-identical to
    /// [`build_serial_replay`](Self::build_serial_replay) at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `patterns == 0`.
    pub fn build(
        circuit: &Circuit,
        chains: &ScanChains,
        lfsr_seed: u64,
        window: u64,
        patterns: u64,
        threads: usize,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(patterns > 0, "session must apply patterns");
        let golden = golden_pass(circuit, chains, lfsr_seed, window, patterns);
        let universe = FaultUniverse::collapsed(circuit);
        let faults: Vec<Fault> = (0..universe.num_faults())
            .map(|i| universe.fault(i))
            .collect();

        let threads = resolve_threads(threads).clamp(1, faults.len().max(1));
        let rows: SweepRows = if threads == 1 || faults.is_empty() {
            sweep_chunk(circuit, &faults, &golden, window)
        } else {
            let chunk = faults.len().div_ceil(threads);
            let mut rows = Vec::with_capacity(faults.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for part in faults.chunks(chunk) {
                    let golden = &golden;
                    handles.push(scope.spawn(move || sweep_chunk(circuit, part, golden, window)));
                }
                // Index-order merge: chunks are contiguous fault ranges,
                // joined in spawn order, so the fold is deterministic.
                for h in handles {
                    match h.join() {
                        Ok(part) => rows.extend(part),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            rows
        };

        let mut detect_windows = Vec::with_capacity(rows.len());
        let mut fail_table = Vec::with_capacity(rows.len());
        for (windows, fail) in rows {
            detect_windows.push(windows);
            fail_table.push(fail);
        }
        SessionTable {
            faults,
            fail_table,
            detect_windows,
            windows: (patterns / window) as u32,
            golden: SessionResult {
                final_signature: golden.final_signature,
                signatures: golden.signatures,
                patterns,
            },
        }
    }

    /// The historical construction kept as reference: one full session
    /// replay per fault for the fail table
    /// ([`StumpsSession::run_with_fault`](crate::StumpsSession::run_with_fault))
    /// plus a second, independent detect-mask sweep for the dictionary —
    /// exactly the combined cost `CutModel::build` and `Diagnoser::new`
    /// used to pay. Serves as the dictionary-build benchmark baseline and
    /// the equivalence oracle for [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `patterns == 0`.
    pub fn build_serial_replay(
        circuit: &Circuit,
        chains: &ScanChains,
        lfsr_seed: u64,
        window: u64,
        patterns: u64,
    ) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(patterns > 0, "session must apply patterns");
        let session = StumpsSession::new(circuit, chains, lfsr_seed, window);
        let golden = session.run_golden(patterns);
        let universe = FaultUniverse::collapsed(circuit);
        let faults: Vec<Fault> = (0..universe.num_faults())
            .map(|i| universe.fault(i))
            .collect();

        // Pass 1 (the old fail-table cost): a full faulty session per
        // fault.
        let fail_table: Vec<FailData> = faults
            .iter()
            .map(|&fault| session.run_with_fault(fault, &golden))
            .collect();

        // Pass 2 (the old dictionary cost): an independent detect-mask
        // sweep per fault at window granularity.
        let mut detect_windows: Vec<Vec<u32>> = vec![Vec::new(); faults.len()];
        let mut sim = FaultSim::new(circuit);
        let mut lfsr = Lfsr::new32(lfsr_seed);
        let mut done = 0u64;
        while done < patterns {
            let count = ((patterns - done).min(PatternBlock::CAPACITY as u64)) as usize;
            let block = lfsr_pattern_block(circuit, chains, &mut lfsr, count);
            sim.run_good(&block);
            for (fi, fault) in faults.iter().enumerate() {
                let mask = sim.detect_mask(*fault, &block, false);
                for j in mask.iter_ones() {
                    let w = ((done + u64::from(j)) / window) as u32;
                    if detect_windows[fi].last() != Some(&w) {
                        detect_windows[fi].push(w);
                    }
                }
            }
            done += count as u64;
        }

        SessionTable {
            faults,
            fail_table,
            detect_windows,
            windows: (patterns / window) as u32,
            golden,
        }
    }

    /// Number of collapsed faults covered by the table.
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// The `i`-th fault (fault-universe order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fault(&self, i: usize) -> Fault {
        self.faults[i]
    }

    /// The fail data of fault `i` under the session.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn fail_data(&self, i: usize) -> &FailData {
        &self.fail_table[i]
    }

    /// The detect-window set of fault `i`, strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (caller bug, not data-reachable).
    pub fn detect_windows(&self, i: usize) -> &[u32] {
        &self.detect_windows[i]
    }

    /// Number of complete signature windows of the session.
    pub fn windows(&self) -> u32 {
        self.windows
    }

    /// The golden session result (response data) the table was built
    /// against.
    pub fn golden(&self) -> &SessionResult {
        &self.golden
    }

    /// Decomposes the table into `(faults, fail_table, detect_windows,
    /// windows)` so consumers can take ownership without cloning.
    pub fn into_parts(self) -> (Vec<Fault>, Vec<FailData>, Vec<Vec<u32>>, u32) {
        (
            self.faults,
            self.fail_table,
            self.detect_windows,
            self.windows,
        )
    }
}

/// Walks the golden session once: materializes the pattern blocks, packs
/// every pattern's observable response into MISR absorb words, and folds
/// the per-window golden signatures — the identical absorb stream to
/// [`StumpsSession::run_golden`](crate::StumpsSession::run_golden).
fn golden_pass(
    circuit: &Circuit,
    chains: &ScanChains,
    lfsr_seed: u64,
    window: u64,
    patterns: u64,
) -> GoldenPass {
    let mut lfsr = Lfsr::new32(lfsr_seed);
    let mut blocks = Vec::new();
    let mut done = 0u64;
    while done < patterns {
        let count = ((patterns - done).min(PatternBlock::CAPACITY as u64)) as usize;
        blocks.push(lfsr_pattern_block(circuit, chains, &mut lfsr, count));
        done += count as u64;
    }

    let stride = circuit.response_width().div_ceil(64);
    let mut packed = Vec::with_capacity(patterns as usize * stride);
    let mut good = GoodSim::new(circuit);
    let mut misr = Misr::new();
    let mut signatures = Vec::new();
    let mut done = 0u64;
    for block in &blocks {
        good.run(block);
        let r = good.response(block);
        for j in 0..block.len() {
            let start = packed.len();
            let mut word = 0u64;
            let mut k = 0;
            for i in 0..r.width() {
                if r.get(i, j) {
                    word |= 1 << k;
                }
                k += 1;
                if k == 64 {
                    packed.push(word);
                    word = 0;
                    k = 0;
                }
            }
            if k > 0 {
                packed.push(word);
            }
            for &w in &packed[start..] {
                misr.absorb(w);
            }
            done += 1;
            if done.is_multiple_of(window) {
                signatures.push(misr.signature());
                misr.reset();
            }
        }
    }
    let final_signature = match signatures.last() {
        Some(&last) if done.is_multiple_of(window) => last,
        _ => misr.signature(),
    };
    GoldenPass {
        blocks,
        packed,
        stride,
        signatures,
        final_signature,
    }
}

/// One worker's share of the sweep: blocks outer (the good machine is
/// simulated once per block and shared by every fault of the chunk),
/// faults inner (one event-driven cone walk per fault per block).
fn sweep_chunk(
    circuit: &Circuit,
    faults: &[Fault],
    golden: &GoldenPass,
    window: u64,
) -> SweepRows {
    let mut sim = FaultSim::new(circuit);
    // Detected global pattern indices per fault, ascending (blocks are
    // walked in order and `iter_ones` ascends).
    let mut detects: Vec<Vec<u64>> = vec![Vec::new(); faults.len()];
    let mut base = 0u64;
    for block in &golden.blocks {
        sim.run_good(block);
        for (fi, &fault) in faults.iter().enumerate() {
            let mask = sim.detect_mask(fault, block, false);
            for j in mask.iter_ones() {
                detects[fi].push(base + u64::from(j));
            }
        }
        base += block.len() as u64;
    }
    detects
        .iter()
        .map(|positions| derive_fault_row(positions, golden, window))
        .collect()
}

/// Derives one fault's detect-window set and fail data from its detected
/// pattern positions, replaying only the affected complete windows from
/// the packed golden response words.
fn derive_fault_row(positions: &[u64], golden: &GoldenPass, window: u64) -> (Vec<u32>, FailData) {
    let mut windows = Vec::new();
    let mut fail = FailData::new();
    let stride = golden.stride;
    let mut idx = 0usize;
    while idx < positions.len() {
        let w = positions[idx] / window;
        let mut end = idx;
        while end < positions.len() && positions[end] / window == w {
            end += 1;
        }
        windows.push(w as u32);
        // Only complete windows carry a signature; a detection in the
        // partial trailing window enters the dictionary but produces no
        // fail entry (exactly as in `run_with_fault`, which never reaches
        // the signature compare for an unfinished window).
        if (w as usize) < golden.signatures.len() {
            // Faulty window replay: the golden absorb stream of the
            // window's patterns, with the error word injected after each
            // detecting pattern. The MISR starts from its reset state at
            // the window boundary, so the replay is exact.
            let mut misr = Misr::new();
            let mut det = idx;
            for p in w * window..(w + 1) * window {
                let at = p as usize * stride;
                for &word in &golden.packed[at..at + stride] {
                    misr.absorb(word);
                }
                if det < end && positions[det] == p {
                    misr.absorb(1); // corrupt: extra error word
                    det += 1;
                }
            }
            let sig = misr.signature();
            // MISR aliasing can cancel the corruption (~2^-64): a
            // detected window whose signature still matches golden leaves
            // no fail entry, exactly like the full replay.
            if sig != golden.signatures[w as usize] {
                fail.push(w as u32, sig);
            }
        }
        idx = end;
    }
    (windows, fail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::{synthesize, SynthConfig};

    fn setup(seed: u64) -> (Circuit, ScanChains) {
        let c = synthesize(&SynthConfig {
            gates: 120,
            inputs: 8,
            dffs: 16,
            seed,
            ..SynthConfig::default()
        })
        .expect("synthesizes");
        let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
        (c, chains)
    }

    #[test]
    fn one_pass_matches_serial_replay() {
        let (c, chains) = setup(3);
        let serial = SessionTable::build_serial_replay(&c, &chains, 0xACE1, 16, 200);
        for threads in [1usize, 3, 8] {
            let fast = SessionTable::build(&c, &chains, 0xACE1, 16, 200, threads);
            assert_eq!(fast.num_faults(), serial.num_faults());
            assert_eq!(fast.golden(), serial.golden());
            assert_eq!(fast.windows(), serial.windows());
            for i in 0..serial.num_faults() {
                assert_eq!(fast.fault(i), serial.fault(i));
                assert_eq!(
                    fast.fail_data(i),
                    serial.fail_data(i),
                    "fail data diverged at fault {i} ({} threads)",
                    threads
                );
                assert_eq!(
                    fast.detect_windows(i),
                    serial.detect_windows(i),
                    "detect windows diverged at fault {i} ({} threads)",
                    threads
                );
            }
        }
    }

    #[test]
    fn fail_table_matches_run_with_fault() {
        let (c, chains) = setup(7);
        let table = SessionTable::build(&c, &chains, 0xBEEF, 8, 192, 0);
        let session = StumpsSession::new(&c, &chains, 0xBEEF, 8);
        let golden = session.run_golden(192);
        assert_eq!(table.golden(), &golden);
        for i in 0..table.num_faults() {
            let direct = session.run_with_fault(table.fault(i), &golden);
            assert_eq!(table.fail_data(i), &direct, "fault {i}");
        }
    }

    #[test]
    fn partial_trailing_window_enters_dictionary_not_fail_data() {
        let (c, chains) = setup(3);
        // 95 patterns at window 10: patterns 90..95 form a partial window
        // with index 9 that never yields a signature.
        let table = SessionTable::build(&c, &chains, 0xACE1, 10, 95, 1);
        assert_eq!(table.windows(), 9);
        let mut saw_partial = false;
        for i in 0..table.num_faults() {
            if table.detect_windows(i).contains(&9) {
                saw_partial = true;
            }
            for e in table.fail_data(i).entries() {
                assert!(e.window < 9, "fail entry in the partial window");
            }
        }
        assert!(saw_partial, "no fault detected in the trailing window");
    }

    #[test]
    fn detect_windows_are_strictly_increasing() {
        let (c, chains) = setup(11);
        let table = SessionTable::build(&c, &chains, 1, 4, 64, 2);
        let mut nonempty = 0;
        for i in 0..table.num_faults() {
            let w = table.detect_windows(i);
            assert!(w.windows(2).all(|p| p[0] < p[1]));
            nonempty += usize::from(!w.is_empty());
        }
        assert!(nonempty > 0);
    }
}
