//! Equivalence oracles for the diagnosis engine rewrite (DESIGN.md §15).
//!
//! Two independently implemented paths must agree bit-for-bit:
//!
//! * **dictionary build** — the one-pass wide-word [`SessionTable`]
//!   sweep vs the historical one-session-replay-per-fault construction,
//!   across seeds, session geometry and worker thread counts, and
//! * **lookup** — the inverted-index [`Diagnoser::diagnose`] (with its
//!   fingerprint fast path) vs the retained linear Jaccard scan, across
//!   clean, truncated, window-lost, corrupted and empty payloads — the
//!   impairment constructors the channel layer applies in transit.
//!
//! The SRAM family gets the same treatment: indexed
//! [`MarchTest::diagnose`] vs [`MarchTest::diagnose_linear`].

use eea_bist::{
    march_fail_data, Diagnoser, FailData, MarchTest, SessionTable, SramConfig, StumpsSession,
    FAIL_ENTRY_BYTES,
};
use eea_faultsim::FaultUniverse;
use eea_netlist::{synthesize, ScanChains, SynthConfig};
use proptest::prelude::*;

fn substrate(seed: u64, gates: usize) -> (eea_netlist::Circuit, ScanChains) {
    let c = synthesize(&SynthConfig {
        gates,
        inputs: 8,
        dffs: 12,
        seed,
        ..SynthConfig::default()
    })
    .expect("synthesizes");
    let chains = ScanChains::balanced(&c, 4).expect("at least one chain");
    (c, chains)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The one-pass sweep emits, for every fault, exactly the fail data
    /// and detect-window set of the historical per-fault session replay —
    /// at any worker thread count.
    #[test]
    fn one_pass_table_matches_serial_replay(
        seed in 1u64..6,
        lfsr_seed in 1u64..=0xFFFF,
        window in 3u64..20,
        patterns in 30u64..200,
        threads in 1usize..6,
    ) {
        let (c, chains) = substrate(seed, 70);
        let serial = SessionTable::build_serial_replay(&c, &chains, lfsr_seed, window, patterns);
        let fast = SessionTable::build(&c, &chains, lfsr_seed, window, patterns, threads);
        prop_assert_eq!(fast.num_faults(), serial.num_faults());
        prop_assert_eq!(fast.windows(), serial.windows());
        prop_assert_eq!(fast.golden(), serial.golden());
        for i in 0..serial.num_faults() {
            prop_assert_eq!(fast.fault(i), serial.fault(i));
            prop_assert_eq!(fast.fail_data(i), serial.fail_data(i), "fail data, fault {}", i);
            prop_assert_eq!(
                fast.detect_windows(i),
                serial.detect_windows(i),
                "detect windows, fault {}",
                i
            );
        }
    }

    /// Indexed diagnosis (posting lists + fingerprint fast path) is
    /// `PartialEq`-identical to the linear scan for every payload shape
    /// the channel layer can produce — including repeated lookups that
    /// hit the memoized fingerprint ranking.
    #[test]
    fn indexed_diagnose_matches_linear(
        seed in 1u64..6,
        window in 3u64..14,
        patterns in 40u64..160,
        cap_entries in 1u64..12,
        slot in 0usize..8,
        salt in 0u8..=255,
    ) {
        let (c, chains) = substrate(seed, 70);
        let table = SessionTable::build(&c, &chains, 0xACE1, window, patterns, 2);
        let diagnoser = Diagnoser::from_table(&table);
        let session = StumpsSession::new(&c, &chains, 0xACE1, window);
        let golden = session.run_golden(patterns);
        let universe = FaultUniverse::collapsed(&c);
        let check = |payload: &FailData, what: &str, fi: usize| -> Result<(), TestCaseError> {
            prop_assert_eq!(
                diagnoser.diagnose(payload),
                diagnoser.diagnose_linear(payload),
                "{} payload of fault {}",
                what,
                fi
            );
            // Second lookup: the fingerprint memo must return the same.
            prop_assert_eq!(
                diagnoser.diagnose(payload),
                diagnoser.diagnose_linear(payload),
                "{} payload of fault {} (repeat)",
                what,
                fi
            );
            Ok(())
        };
        for fi in (0..universe.num_faults()).step_by(9) {
            let fail = session.run_with_fault(universe.fault(fi), &golden);
            check(&fail, "clean", fi)?;
            check(&fail.truncated_to(cap_entries * FAIL_ENTRY_BYTES), "truncated", fi)?;
            check(&fail.without_window_slot(slot), "window-lost", fi)?;
            check(&fail.with_corrupted_window(salt), "corrupted", fi)?;
        }
        check(&FailData::new(), "empty", 0)?;
        // Out-of-order observations exercise the linear fallback.
        let mut unsorted = FailData::new();
        unsorted.push(7, u64::from(salt) | 1);
        unsorted.push(1, 0xFEED);
        unsorted.push(4, 0xBEEF);
        check(&unsorted, "unsorted", 0)?;
    }

    /// SRAM-family indexed diagnosis vs the linear `(element, syndrome)`
    /// scan, over the same impairment shapes.
    #[test]
    fn march_indexed_matches_linear(
        words in 2u32..12,
        bits in 1u32..9,
        cap_entries in 1u64..7,
        slot in 0usize..6,
        salt in 0u8..=255,
    ) {
        let m = MarchTest::build(SramConfig { words, bits }).expect("geometry is valid");
        let pass = march_fail_data(&SramConfig { words, bits }, None);
        prop_assert_eq!(m.diagnose(&pass), m.diagnose_linear(&pass));
        for &i in m.detectable_faults().iter().step_by(11) {
            let fail = m.fail_data(i);
            prop_assert_eq!(m.diagnose(fail), m.diagnose_linear(fail), "fault {}", i);
            let capped = fail.truncated_to(cap_entries * FAIL_ENTRY_BYTES);
            prop_assert_eq!(m.diagnose(&capped), m.diagnose_linear(&capped), "capped {}", i);
            let lost = fail.without_window_slot(slot);
            prop_assert_eq!(m.diagnose(&lost), m.diagnose_linear(&lost), "lost {}", i);
            let corrupt = fail.with_corrupted_window(salt);
            prop_assert_eq!(m.diagnose(&corrupt), m.diagnose_linear(&corrupt), "corrupt {}", i);
        }
    }

    /// `Diagnoser::new` (the public constructor) is the one-pass build:
    /// its rankings equal a diagnoser built from the serial-replay table,
    /// pinning `from_table` as a pure refactor of `new`.
    #[test]
    fn constructor_equals_serial_replay_dictionary(
        seed in 1u64..6,
        window in 4u64..12,
        patterns in 40u64..120,
    ) {
        let (c, chains) = substrate(seed, 60);
        let fast = Diagnoser::new(&c, &chains, 0xACE1, window, patterns);
        let serial = Diagnoser::from_table(&SessionTable::build_serial_replay(
            &c, &chains, 0xACE1, window, patterns,
        ));
        prop_assert_eq!(fast.num_candidates(), serial.num_candidates());
        prop_assert_eq!(fast.windows(), serial.windows());
        let session = StumpsSession::new(&c, &chains, 0xACE1, window);
        let golden = session.run_golden(patterns);
        let universe = FaultUniverse::collapsed(&c);
        for fi in (0..universe.num_faults()).step_by(13) {
            let fail = session.run_with_fault(universe.fault(fi), &golden);
            prop_assert_eq!(fast.diagnose(&fail), serial.diagnose(&fail), "fault {}", fi);
        }
    }
}
