//! Property tests: the CDCL solver agrees with brute-force enumeration on
//! random small formulas, for arbitrary priority/polarity hints.

use eea_sat::{Lit, SolveResult, Solver};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Formula {
    num_vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
    amo: Vec<usize>,
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    (3usize..9).prop_flat_map(|num_vars| {
        let clause = proptest::collection::vec((0..num_vars, any::<bool>()), 1..4);
        let clauses = proptest::collection::vec(clause, 1..16);
        let amo = proptest::collection::vec(0..num_vars, 0..num_vars.min(5));
        (clauses, amo).prop_map(move |(clauses, mut amo)| {
            amo.sort_unstable();
            amo.dedup();
            Formula {
                num_vars,
                clauses,
                amo,
            }
        })
    })
}

fn brute_force_sat(f: &Formula) -> bool {
    'outer: for bits in 0u32..(1 << f.num_vars) {
        let val = |i: usize| (bits >> i) & 1 == 1;
        for cl in &f.clauses {
            if !cl.iter().any(|&(v, s)| val(v) == s) {
                continue 'outer;
            }
        }
        if f.amo.iter().filter(|&&v| val(v)).count() > 1 {
            continue 'outer;
        }
        return true;
    }
    false
}

fn build_solver(f: &Formula, hints: Option<(&[f64], &[bool])>) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..f.num_vars).map(|_| s.new_var()).collect();
    for cl in &f.clauses {
        let lits: Vec<Lit> = cl.iter().map(|&(i, sg)| vars[i].lit(sg)).collect();
        s.add_clause(&lits);
    }
    if f.amo.len() >= 2 {
        let lits: Vec<Lit> = f.amo.iter().map(|&i| vars[i].positive()).collect();
        s.add_at_most_one(&lits);
    }
    if let Some((prio, pol)) = hints {
        for (i, &v) in vars.iter().enumerate() {
            s.set_priority(v, prio[i % prio.len()]);
            s.set_polarity(v, pol[i % pol.len()]);
        }
    }
    s
}

fn model_satisfies(f: &Formula, s: &Solver) -> bool {
    let val = |i: usize| {
        let v = eea_sat::Var::from_index(i);
        s.value(v)
    };
    f.clauses
        .iter()
        .all(|cl| cl.iter().any(|&(v, sg)| val(v) == sg))
        && f.amo.iter().filter(|&&v| val(v)).count() <= 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force(f in formula_strategy()) {
        let expected = brute_force_sat(&f);
        let mut s = build_solver(&f, None);
        let got = s.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            prop_assert!(model_satisfies(&f, &s));
        }
    }

    #[test]
    fn hints_never_change_satisfiability(
        f in formula_strategy(),
        prio in proptest::collection::vec(0.0f64..1.0, 1..6),
        pol in proptest::collection::vec(any::<bool>(), 1..6),
    ) {
        let expected = brute_force_sat(&f);
        let mut s = build_solver(&f, Some((&prio, &pol)));
        let got = s.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected, "hints changed satisfiability");
        if got {
            prop_assert!(model_satisfies(&f, &s));
        }
    }

    #[test]
    fn resolving_is_consistent(f in formula_strategy()) {
        // Solving twice (with learned clauses retained) gives the same
        // satisfiability and a valid model each time.
        let mut s = build_solver(&f, None);
        let first = s.solve();
        let second = s.solve();
        prop_assert_eq!(first, second);
        if first == SolveResult::Sat {
            prop_assert!(model_satisfies(&f, &s));
        }
    }
}
