//! Indexed max-heap over variables, ordered by (static priority, dynamic
//! activity).
//!
//! The static priority implements SAT-decoding: the MOEA genotype assigns
//! one priority per decision variable and the solver branches in that
//! order. The dynamic VSIDS activity breaks ties (and drives the search
//! when no priorities are set).

/// Branching order heap. Keys are compared lexicographically:
/// static priority first, then activity.
#[derive(Debug, Default, Clone)]
pub struct VarHeap {
    /// Heap of variable indices.
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX`.
    pos: Vec<usize>,
    static_priority: Vec<f64>,
    activity: Vec<f64>,
}

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the key arrays to `n` variables and inserts the new ones.
    pub fn grow(&mut self, n: usize) {
        while self.pos.len() < n {
            let i = self.pos.len();
            self.pos.push(usize::MAX);
            self.static_priority.push(0.0);
            self.activity.push(0.0);
            self.insert(i);
        }
    }

    #[inline]
    fn better(&self, a: usize, b: usize) -> bool {
        let ka = (self.static_priority[a], self.activity[a]);
        let kb = (self.static_priority[b], self.activity[b]);
        ka > kb
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.better(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                self.pos[self.heap[i]] = i;
                self.pos[self.heap[parent]] = parent;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.better(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.better(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            self.pos[self.heap[i]] = i;
            self.pos[self.heap[best]] = best;
            i = best;
        }
    }

    fn insert(&mut self, v: usize) {
        if self.pos[v] != usize::MAX {
            return;
        }
        self.pos[v] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    /// Sets the static (decode) priority of a variable.
    pub fn set_static_priority(&mut self, v: usize, p: f64) {
        self.static_priority[v] = p;
        self.resift(v);
    }

    /// Sets the dynamic (VSIDS) activity of a variable.
    pub fn set_dynamic_activity(&mut self, v: usize, a: f64) {
        self.activity[v] = a;
        self.resift(v);
    }

    fn resift(&mut self, v: usize) {
        let i = self.pos[v];
        if i != usize::MAX {
            self.sift_up(i);
            self.sift_down(self.pos[v]);
        }
    }

    /// Reinserts a variable (after unassignment during backtracking).
    pub fn reinsert(&mut self, v: usize) {
        self.insert(v);
    }

    /// Reinserts every variable (start of a solve).
    pub fn rebuild(&mut self) {
        for v in 0..self.pos.len() {
            self.insert(v);
        }
    }

    /// Removes and returns the best variable, or `None` when empty.
    pub fn pop_max(&mut self) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top] = usize::MAX;
        let last = self.heap.pop()?;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Number of queued variables.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_priority_order() {
        let mut h = VarHeap::new();
        h.grow(5);
        for (v, p) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 2.0)] {
            h.set_static_priority(v, p);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop_max()).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn activity_breaks_ties() {
        let mut h = VarHeap::new();
        h.grow(3);
        h.set_dynamic_activity(1, 9.0);
        h.set_dynamic_activity(2, 4.0);
        assert_eq!(h.pop_max(), Some(1));
        assert_eq!(h.pop_max(), Some(2));
        assert_eq!(h.pop_max(), Some(0));
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn static_dominates_activity() {
        let mut h = VarHeap::new();
        h.grow(2);
        h.set_dynamic_activity(0, 100.0);
        h.set_static_priority(1, 0.1);
        assert_eq!(h.pop_max(), Some(1));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut h = VarHeap::new();
        h.grow(2);
        assert_eq!(h.len(), 2);
        h.reinsert(0);
        assert_eq!(h.len(), 2);
        h.pop_max();
        h.pop_max();
        assert!(h.is_empty());
        h.rebuild();
        assert_eq!(h.len(), 2);
    }
}
