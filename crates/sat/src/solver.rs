//! A CDCL SAT solver with native at-most-one constraints and
//! priority-directed branching for SAT-decoding.
//!
//! The feasibility engine behind the paper's design space exploration: the
//! MOEA's genotype supplies per-variable branching priorities and preferred
//! polarities; the solver decodes them into a *feasible* implementation by
//! branching in priority order and repairing conflicts with clause
//! learning. The same solver instance is reused across decodes, so learned
//! clauses accumulate and decoding gets faster over the exploration run.

use crate::heap::VarHeap;
use crate::lit::{Lit, Value, Var};

/// Why a variable got its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    /// Branching decision.
    Decision,
    /// Propagated by clause `idx` (watched-literal unit propagation).
    Clause(u32),
    /// Propagated by an at-most-one constraint; `other` is the literal of
    /// that constraint that became true.
    AmoPair(Lit),
    /// Not assigned.
    None,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    activity: f64,
}

/// Result of [`Solver::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; read the model with [`Solver::value`].
    Sat,
    /// Unsatisfiable.
    Unsat,
}

/// CDCL solver with priority-directed branching (see the crate docs for
/// the SAT-decoding workflow).
///
/// # Example
///
/// ```
/// use eea_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative(), b.negative()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert_ne!(s.value(a), s.value(b));
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clauses watching that literal.
    watches: Vec<Vec<u32>>,
    /// At-most-one groups.
    amos: Vec<Vec<Lit>>,
    /// For each literal code, the AMO groups in which it occurs positively.
    amo_occurs: Vec<Vec<u32>>,
    values: Vec<Value>,
    reason: Vec<Reason>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    head: usize,
    /// Branching order (max priority first).
    heap: VarHeap,
    /// Saved phase per variable (last assigned value).
    phase: Vec<bool>,
    /// User-preferred polarity (decode mode); overrides phase saving.
    user_polarity: Vec<Option<bool>>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    ok: bool,
    conflicts: u64,
    /// Analysis scratch.
    seen: Vec<bool>,
    /// Statistics: total propagations.
    propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            amos: Vec::new(),
            amo_occurs: Vec::new(),
            values: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            head: 0,
            heap: VarHeap::new(),
            phase: Vec::new(),
            user_polarity: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            conflicts: 0,
            seen: Vec::new(),
            propagations: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        self.values.push(Value::Unassigned);
        self.reason.push(Reason::None);
        self.level.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.amo_occurs.push(Vec::new());
        self.amo_occurs.push(Vec::new());
        self.phase.push(false);
        self.user_polarity.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.heap.grow(self.num_vars);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of conflicts encountered so far (across all solves).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of unit propagations performed so far.
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    /// Number of learned clauses currently in the database.
    pub fn num_learned(&self) -> usize {
        self.clauses.iter().filter(|c| c.learned).count()
    }

    /// Current value of a literal.
    #[inline]
    fn lit_value(&self, l: Lit) -> Value {
        let v = self.values[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    /// Model value of a variable (valid after a `Sat` result; unassigned
    /// variables read as `false`).
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()] == Value::True
    }

    /// Adds a clause (disjunction of literals).
    ///
    /// Returns `false` if the formula became trivially unsatisfiable.
    /// May be called between solves; the solver backtracks to level 0.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack_to(0);
        if !self.ok {
            return false;
        }
        // Normalise: drop duplicate and false literals, detect tautology.
        let mut ls: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.lit_value(l) == Value::True {
                return true; // satisfied at level 0
            }
            if self.lit_value(l) == Value::False {
                continue;
            }
            if ls.contains(&!l) {
                return true; // tautology
            }
            if !ls.contains(&l) {
                ls.push(l);
            }
        }
        match ls.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(ls[0], Reason::Decision);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(ls, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(Clause {
            lits,
            learned,
            activity: 0.0,
        });
        idx
    }

    /// Adds an at-most-one constraint over `lits`. May be called between
    /// solves; the solver backtracks to level 0.
    ///
    /// # Panics
    ///
    /// Panics if `lits` repeats a variable.
    pub fn add_at_most_one(&mut self, lits: &[Lit]) {
        self.backtrack_to(0);
        if lits.len() < 2 || !self.ok {
            return;
        }
        for (i, &a) in lits.iter().enumerate() {
            for &b in &lits[i + 1..] {
                assert_ne!(a.var(), b.var(), "AMO over a repeated variable");
            }
        }
        let idx = self.amos.len() as u32;
        for &l in lits {
            self.amo_occurs[l.code()].push(idx);
        }
        self.amos.push(lits.to_vec());
        // Handle literals already true at level 0.
        if let Some(&t) = lits.iter().find(|&&l| self.lit_value(l) == Value::True) {
            for &l in lits {
                if l == t {
                    continue;
                }
                match self.lit_value(l) {
                    Value::True => {
                        // Two literals already true at level 0.
                        self.ok = false;
                        return;
                    }
                    Value::Unassigned => self.enqueue(!l, Reason::AmoPair(t)),
                    Value::False => {}
                }
            }
            if self.propagate().is_some() {
                self.ok = false;
            }
        }
    }

    /// Adds an exactly-one constraint (at-least-one clause + at-most-one).
    pub fn add_exactly_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
        self.add_at_most_one(lits);
    }

    /// Adds the implication `a -> b`.
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add_clause(&[!a, b]);
    }

    /// Adds the equivalence `a <-> b`.
    pub fn add_equal(&mut self, a: Lit, b: Lit) {
        self.add_clause(&[!a, b]);
        self.add_clause(&[a, !b]);
    }

    /// Sets the preferred polarity of a variable (the value it is assigned
    /// first when branched on).
    pub fn set_polarity(&mut self, v: Var, polarity: bool) {
        self.user_polarity[v.index()] = Some(polarity);
    }

    /// Sets the branching priority of a variable. Higher priorities are
    /// decided first. Used by SAT-decoding: the genotype supplies one
    /// priority per decision variable.
    pub fn set_priority(&mut self, v: Var, priority: f64) {
        self.heap.set_static_priority(v.index(), priority);
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.lit_value(l), Value::Unassigned);
        let v = l.var();
        self.values[v.index()] = if l.is_positive() {
            Value::True
        } else {
            Value::False
        };
        self.reason[v.index()] = reason;
        self.level[v.index()] = self.trail_lim.len() as u32;
        self.trail.push(l);
    }

    /// Propagates until fixpoint; returns the conflicting clause (as a
    /// literal vector) on conflict.
    fn propagate(&mut self) -> Option<Vec<Lit>> {
        while self.head < self.trail.len() {
            let p = self.trail[self.head];
            self.head += 1;
            self.propagations += 1;

            // AMO constraints containing p positively: all other literals
            // become false.
            let groups = std::mem::take(&mut self.amo_occurs[p.code()]);
            for &gi in &groups {
                let group = &self.amos[gi as usize];
                let mut conflict = None;
                for k in 0..group.len() {
                    let l = self.amos[gi as usize][k];
                    if l == p {
                        continue;
                    }
                    match self.lit_value(l) {
                        Value::True => {
                            // Two true literals in one AMO: conflict clause
                            // (!p \/ !l).
                            conflict = Some(vec![!p, !l]);
                            break;
                        }
                        Value::Unassigned => self.enqueue(!l, Reason::AmoPair(p)),
                        Value::False => {}
                    }
                }
                if conflict.is_some() {
                    self.amo_occurs[p.code()] = groups;
                    return conflict;
                }
            }
            self.amo_occurs[p.code()] = groups;

            // Clauses watching !p must find a new watch or propagate.
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                let lit_val = |values: &[Value], l: Lit| -> Value {
                    let v = values[l.var().index()];
                    if l.is_positive() {
                        v
                    } else {
                        v.negate()
                    }
                };
                let clause = &mut self.clauses[ci as usize];
                // Ensure lits[0] is the other watch.
                if clause.lits[0] == false_lit {
                    clause.lits.swap(0, 1);
                }
                let first = clause.lits[0];
                if lit_val(&self.values, first) == Value::True {
                    i += 1;
                    continue;
                }
                // Find a replacement watch.
                let mut found = false;
                for k in 2..clause.lits.len() {
                    let l = clause.lits[k];
                    if lit_val(&self.values, l) != Value::False {
                        clause.lits.swap(1, k);
                        self.watches[l.code()].push(ci);
                        watch_list.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Unit or conflict.
                if lit_val(&self.values, first) == Value::False {
                    let conflict = self.clauses[ci as usize].lits.clone();
                    self.watches[false_lit.code()] = watch_list;
                    return Some(conflict);
                }
                self.enqueue(first, Reason::Clause(ci));
                i += 1;
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    fn reason_lits(&self, v: Var) -> Vec<Lit> {
        match self.reason[v.index()] {
            Reason::Clause(ci) => self.clauses[ci as usize].lits.clone(),
            Reason::AmoPair(other) => {
                let this = v.lit(self.values[v.index()] == Value::True);
                vec![this, !other]
            }
            Reason::Decision | Reason::None => Vec::new(),
        }
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.set_dynamic_activity(v.index(), self.activity[v.index()]);
    }

    /// First-UIP conflict analysis; returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: Vec<Lit>) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learned: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut reason = conflict;
        let mut trail_idx = self.trail.len();
        let mut asserting: Option<Lit> = None;

        // The loop always visits at least one current-level literal before
        // `counter` reaches zero (the caller guarantees the conflict happened
        // at a positive decision level), so it breaks with the 1-UIP literal.
        let uip = loop {
            for &l in &reason {
                let v = l.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                // Skip the asserting literal itself when expanding its reason.
                if let Some(a) = asserting {
                    if l == a || l == !a {
                        continue;
                    }
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == cur_level {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Find the next seen literal on the trail at the current level.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if self.seen[l.var().index()] {
                    break;
                }
            }
            let p = self.trail[trail_idx];
            self.seen[p.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break !p;
            }
            reason = self.reason_lits(p.var());
            asserting = Some(!p);
        };
        for &l in &learned {
            self.seen[l.var().index()] = false;
        }
        // Backtrack level: highest level among the non-asserting literals.
        let bt = learned
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        let mut clause = vec![uip];
        clause.extend(learned);
        (clause, bt)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let Some(lim) = self.trail_lim.pop() else { break };
            while self.trail.len() > lim {
                let Some(l) = self.trail.pop() else { break };
                let v = l.var();
                self.phase[v.index()] = self.values[v.index()] == Value::True;
                self.values[v.index()] = Value::Unassigned;
                self.reason[v.index()] = Reason::None;
                self.heap.reinsert(v.index());
            }
        }
        self.head = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(vi) = self.heap.pop_max() {
            if self.values[vi] == Value::Unassigned {
                return Some(Var(vi as u32));
            }
        }
        None
    }

    /// Solves the current formula.
    ///
    /// Branching honours the priorities set via
    /// [`set_priority`](Self::set_priority) (static, decode mode) combined
    /// with VSIDS activity, and polarity hints set via
    /// [`set_polarity`](Self::set_polarity). The solver state is reset to
    /// decision level 0 first, so `solve` can be called repeatedly with
    /// different hints while keeping learned clauses.
    pub fn solve(&mut self) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        self.heap.rebuild();
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 256u64;
        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.trail_lim.is_empty() {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    let (learned, bt) = self.analyze(conflict);
                    self.backtrack_to(bt);
                    match learned.len() {
                        1 => {
                            self.enqueue(learned[0], Reason::Decision);
                        }
                        _ => {
                            let ci = self.attach_clause(learned.clone(), true);
                            self.clauses[ci as usize].activity = self.cla_inc;
                            self.enqueue(learned[0], Reason::Clause(ci));
                        }
                    }
                    self.var_inc /= 0.95;
                    self.cla_inc /= 0.999;
                    if conflicts_since_restart >= restart_limit {
                        conflicts_since_restart = 0;
                        restart_limit = (restart_limit * 3) / 2;
                        self.backtrack_to(0);
                    }
                }
                None => match self.pick_branch() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let pol = self.user_polarity[v.index()]
                            .unwrap_or(self.phase[v.index()]);
                        self.enqueue(v.lit(pol), Reason::Decision);
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[0]));

        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[0].negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b), (b xor c), (a xor c) is unsat; drop one -> sat.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let xor = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[a.positive(), b.positive()]);
            s.add_clause(&[a.negative(), b.negative()]);
        };
        xor(&mut s, v[0], v[1]);
        xor(&mut s, v[1], v[2]);
        assert_eq!(s.solve(), SolveResult::Sat);
        xor(&mut s, v[0], v[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn amo_propagates() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let lits: Vec<Lit> = v.iter().map(|x| x.positive()).collect();
        s.add_at_most_one(&lits);
        s.add_clause(&[v[1].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[1]));
        assert!(!s.value(v[0]) && !s.value(v[2]) && !s.value(v[3]));
    }

    #[test]
    fn amo_conflict_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_at_most_one(&[v[0].positive(), v[1].positive()]);
        s.add_clause(&[v[0].positive()]);
        s.add_clause(&[v[1].positive()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn exactly_one_picks_one() {
        let mut s = Solver::new();
        let v = vars(&mut s, 5);
        let lits: Vec<Lit> = v.iter().map(|x| x.positive()).collect();
        s.add_exactly_one(&lits);
        assert_eq!(s.solve(), SolveResult::Sat);
        let count = v.iter().filter(|&&x| s.value(x)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn polarity_hint_respected_when_free() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let lits: Vec<Lit> = v.iter().map(|x| x.positive()).collect();
        s.add_clause(&lits);
        for &x in &v {
            s.set_polarity(x, true);
        }
        s.set_priority(v[2], 10.0);
        assert_eq!(s.solve(), SolveResult::Sat);
        // The highest-priority variable is decided first with polarity true.
        assert!(s.value(v[2]));
    }

    #[test]
    fn priorities_steer_model() {
        // exactly-one over 4 vars: the decoded "winner" follows priority.
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let lits: Vec<Lit> = v.iter().map(|x| x.positive()).collect();
        s.add_exactly_one(&lits);
        for (i, &x) in v.iter().enumerate() {
            s.set_polarity(x, true);
            s.set_priority(x, i as f64);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[3]));
        // Re-solve with different priorities, same solver.
        for (i, &x) in v.iter().enumerate() {
            s.set_priority(x, -(i as f64));
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.value(v[0]));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for h in 0..2 {
            let lits: Vec<Lit> = p.iter().map(|row| row[h].positive()).collect();
            s.add_at_most_one(&lits);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn php_5_into_4_unsat() {
        let mut s = Solver::new();
        let n = 5;
        let m = 4;
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for h in 0..m {
            let lits: Vec<Lit> = p.iter().map(|row| row[h].positive()).collect();
            s.add_at_most_one(&lits);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn implication_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 10);
        for w in v.windows(2) {
            s.add_implies(w[0].positive(), w[1].positive());
        }
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(v.iter().all(|&x| s.value(x)));
    }

    #[test]
    fn add_equal_links_vars() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_equal(v[0].positive(), v[1].positive());
        s.add_clause(&[v[0].negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.value(v[1]));
    }

    /// Cross-check against brute force on random small formulas.
    #[test]
    fn random_formulas_match_brute_force() {
        let mut rng = 0x2468_ACE0_1357_9BDFu64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..200 {
            let n = 3 + (next() % 6) as usize; // 3..8 vars
            let m = 3 + (next() % 12) as usize;
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let mut cl = Vec::new();
                for _ in 0..len {
                    cl.push(((next() % n as u64) as usize, next() & 1 == 1));
                }
                clauses.push(cl);
            }
            // AMO over a random subset (when n >= 4).
            let amo: Vec<usize> = if n >= 4 { vec![0, 1, 2, 3] } else { vec![] };

            // Brute force.
            let mut expect_sat = false;
            'outer: for bits in 0..(1u32 << n) {
                let val = |i: usize| (bits >> i) & 1 == 1;
                for cl in &clauses {
                    if !cl.iter().any(|&(v, s)| val(v) == s) {
                        continue 'outer;
                    }
                }
                if amo.iter().filter(|&&v| val(v)).count() > 1 {
                    continue 'outer;
                }
                expect_sat = true;
                break;
            }

            let mut s = Solver::new();
            let v = vars(&mut s, n);
            for cl in &clauses {
                let lits: Vec<Lit> = cl.iter().map(|&(i, sg)| v[i].lit(sg)).collect();
                s.add_clause(&lits);
            }
            if !amo.is_empty() {
                let lits: Vec<Lit> = amo.iter().map(|&i| v[i].positive()).collect();
                s.add_at_most_one(&lits);
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expect_sat, "round {round} disagrees with oracle");
            // If SAT, the model must satisfy everything.
            if got {
                for cl in &clauses {
                    assert!(cl.iter().any(|&(i, sg)| s.value(v[i]) == sg));
                }
                assert!(amo.iter().filter(|&&i| s.value(v[i])).count() <= 1);
            }
        }
    }
}
