//! A compact CDCL SAT solver with SAT-decoding support.
//!
//! Implements the feasibility core of the paper's design space exploration
//! (Section III-C): all constraint families of Eqs. (2a)–(2h) and
//! (3a)–(3b) reduce to clauses plus at-most-one constraints, which this
//! solver handles natively. The distinguishing feature over an ordinary SAT
//! solver is **priority-directed branching** ([`Solver::set_priority`] /
//! [`Solver::set_polarity`]): the multi-objective evolutionary algorithm's
//! genotype is a vector of branching priorities and preferred polarities,
//! and the solver "decodes" it into a feasible implementation — the
//! SAT-decoding technique of Lukasiewycz et al. that the paper builds on.
//!
//! # Example
//!
//! ```
//! use eea_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let vars: Vec<_> = (0..4).map(|_| s.new_var()).collect();
//! let lits: Vec<_> = vars.iter().map(|v| v.positive()).collect();
//! s.add_exactly_one(&lits);
//! // Prefer variable 2: the decoded solution selects it.
//! s.set_priority(vars[2], 1.0);
//! s.set_polarity(vars[2], true);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert!(s.value(vars[2]));
//! ```

// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod heap;
mod lit;
mod solver;

pub use lit::{Lit, Value, Var};
pub use solver::{SolveResult, Solver};
