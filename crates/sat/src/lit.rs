use std::fmt;
use std::ops::Not;

/// A Boolean variable, densely indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a variable from a dense index previously obtained from
    /// [`index`](Self::index) on the same solver.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }

    /// Positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// Negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code (2·var + sign), usable as an array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`code`](Self::code).
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Truth value in a partial assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Unassigned,
}

impl Value {
    /// Negated value (`Unassigned` stays `Unassigned`).
    #[inline]
    pub fn negate(self) -> Value {
        match self {
            Value::True => Value::False,
            Value::False => Value::True,
            Value::Unassigned => Value::Unassigned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes() {
        let v = Var(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(!v.positive(), v.negative());
        assert_eq!((!v.negative()).code(), 6);
        assert_eq!(Lit::from_code(7), v.negative());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn display_forms() {
        let v = Var(2);
        assert_eq!(v.positive().to_string(), "x2");
        assert_eq!(v.negative().to_string(), "!x2");
    }

    #[test]
    fn value_negation() {
        assert_eq!(Value::True.negate(), Value::False);
        assert_eq!(Value::Unassigned.negate(), Value::Unassigned);
    }
}
