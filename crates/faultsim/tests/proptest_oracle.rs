//! Property tests: the cone-restricted PPSFP simulator agrees with a
//! brute-force whole-circuit faulty simulation, and the wide pattern word
//! is bit-identical to the classic `u64` path at every supported lane
//! count — same detected faults, same first-detecting pattern indices,
//! with and without early exit, including partially-filled final blocks.

use eea_faultsim::{
    BitBlock, Fault, FaultSim, FaultUniverse, ParFaultSim, PatternBlock, WideFaultSim,
    WideGoodSim, WidePatternBlock,
};
use eea_netlist::{synthesize, Circuit, SynthConfig};
use proptest::prelude::*;

/// Brute-force oracle: simulate the entire faulty circuit without cone
/// restriction and diff the observable response.
fn oracle_detect<const L: usize>(
    c: &Circuit,
    f: Fault,
    block: &WidePatternBlock<L>,
) -> BitBlock<L> {
    use eea_faultsim::FaultSite;
    let forced = if f.stuck_at {
        BitBlock::ONES
    } else {
        BitBlock::ZEROS
    };
    let mut vals = vec![BitBlock::<L>::ZEROS; c.num_gates()];
    for (i, &pi) in c.inputs().iter().enumerate() {
        vals[pi.index()] = block.word(i);
    }
    let npi = c.num_inputs();
    for (i, &ff) in c.dffs().iter().enumerate() {
        vals[ff.index()] = block.word(npi + i);
    }
    if let FaultSite::Stem(g) = f.site {
        if c.kind(g).is_combinational_source() {
            vals[g.index()] = forced;
        }
    }
    for &g in c.topo_order() {
        let mut fanin: Vec<BitBlock<L>> = c.fanin(g).iter().map(|&x| vals[x.index()]).collect();
        if let FaultSite::Pin { gate, pin } = f.site {
            if gate == g {
                fanin[pin as usize] = forced;
            }
        }
        let mut v = c.kind(g).eval(&fanin);
        if let FaultSite::Stem(s) = f.site {
            if s == g {
                v = forced;
            }
        }
        vals[g.index()] = v;
    }
    let mut good = WideGoodSim::<L>::new(c);
    good.run(block);
    let mut det = BitBlock::<L>::ZEROS;
    for &o in c.outputs() {
        det |= vals[o.index()] ^ good.value(o);
    }
    for &ff in c.dffs() {
        let d = c.fanin(ff)[0];
        let mut fv = vals[d.index()];
        if let FaultSite::Pin { gate, .. } = f.site {
            if gate == ff {
                fv = forced;
            }
        }
        det |= fv ^ good.value(d);
    }
    det & block.mask()
}

/// Deterministic pattern bit for global pattern `j`, source `i`: the same
/// stream regardless of how it is later chunked into blocks.
fn pattern_bit(seed: u64, j: usize, i: usize) -> bool {
    let mut x = seed
        ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x & 1 == 1
}

/// Chunks the pattern stream `0..n` into `L`-lane blocks; the final block
/// is partially filled whenever `n` is not a multiple of the capacity.
fn build_blocks<const L: usize>(c: &Circuit, n: usize, seed: u64) -> Vec<WidePatternBlock<L>> {
    let cap = WidePatternBlock::<L>::CAPACITY;
    let mut blocks = Vec::new();
    let mut start = 0;
    while start < n {
        let len = (n - start).min(cap);
        let mut b = WidePatternBlock::<L>::zeroed(c, len);
        for j in 0..len {
            for i in 0..c.pattern_width() {
                b.set(i, j, pattern_bit(seed, start + j, i));
            }
        }
        blocks.push(b);
        start += len;
    }
    blocks
}

/// Runs the fault-drop loop over the chunked stream and returns every
/// fault's `(index, first detecting global pattern)` in sorted order.
fn first_detections<const L: usize>(c: &Circuit, n: usize, seed: u64) -> Vec<(usize, u64)> {
    let mut sim = WideFaultSim::<L>::new(c);
    let mut u = FaultUniverse::collapsed(c);
    let mut out = Vec::new();
    let mut base = 0u64;
    for b in build_blocks::<L>(c, n, seed) {
        for (fi, pos) in sim.detect_block_with_positions(&b, &mut u) {
            out.push((fi, base + u64::from(pos)));
        }
        base += b.len() as u64;
    }
    out.sort_unstable();
    out
}

/// Same stream through the early-exit path; returns the detected-fault set.
fn detected_early_exit<const L: usize>(c: &Circuit, n: usize, seed: u64) -> Vec<bool> {
    let mut sim = WideFaultSim::<L>::new(c);
    let mut u = FaultUniverse::collapsed(c);
    for b in build_blocks::<L>(c, n, seed) {
        sim.detect_block(&b, &mut u);
    }
    (0..u.num_faults()).map(|fi| u.is_detected(fi)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ppsfp_matches_oracle(
        seed in any::<u64>(),
        gates in 30usize..120,
        inputs in 4usize..12,
        dffs in 0usize..8,
        pattern_seed in any::<u64>(),
    ) {
        let c = synthesize(&SynthConfig {
            gates,
            inputs,
            dffs,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        // Full-capacity block: detections land in every lane of the
        // default-width word.
        let mut block = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
        let mut s = pattern_seed | 1;
        block.fill_words(|| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        });
        let universe = FaultUniverse::collapsed(&c);
        let mut sim = FaultSim::new(&c);
        sim.run_good(&block);
        for fi in 0..universe.num_faults() {
            let fault = universe.fault(fi);
            let fast = sim.detect_mask(fault, &block, false);
            let slow = oracle_detect(&c, fault, &block);
            prop_assert_eq!(fast, slow, "fault {} disagrees", fault);
        }
    }

    #[test]
    fn coverage_is_monotone_in_patterns(seed in any::<u64>()) {
        let c = synthesize(&SynthConfig {
            gates: 80,
            inputs: 8,
            dffs: 4,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut universe = FaultUniverse::collapsed(&c);
        let mut sim = FaultSim::new(&c);
        let mut s = seed | 1;
        let mut last = 0.0;
        for _ in 0..6 {
            let mut block = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
            block.fill_words(|| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            });
            sim.detect_block(&block, &mut universe);
            prop_assert!(universe.coverage() >= last);
            last = universe.coverage();
        }
    }

    #[test]
    fn parallel_detection_matches_serial(
        seed in any::<u64>(),
        gates in 60usize..200,
        threads in 2usize..9,
        blocks in 1usize..5,
    ) {
        let c = synthesize(&SynthConfig {
            gates,
            inputs: 10,
            dffs: 6,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut serial_u = FaultUniverse::collapsed(&c);
        let mut parallel_u = FaultUniverse::collapsed(&c);
        let mut serial = FaultSim::new(&c);
        let mut parallel = ParFaultSim::new(&c, threads);
        let mut s = seed | 1;
        for _ in 0..blocks {
            let mut block = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
            block.fill_words(|| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            });
            let ns = serial.detect_block(&block, &mut serial_u);
            let np = parallel.detect_block(&block, &mut parallel_u);
            prop_assert_eq!(ns, np, "detection count diverged");
            let sp = serial.detect_block_with_positions(&block, &mut serial_u);
            let pp = parallel.detect_block_with_positions(&block, &mut parallel_u);
            prop_assert_eq!(sp, pp, "first-detection positions diverged");
        }
        prop_assert_eq!(serial_u.num_live(), parallel_u.num_live());
        for fi in 0..serial_u.num_faults() {
            prop_assert_eq!(serial_u.is_detected(fi), parallel_u.is_detected(fi));
        }
    }

    /// The wide-vs-u64 bit-identity oracle (issue 6): chunking one pattern
    /// stream into 1-, 4- and 8-lane blocks must detect exactly the same
    /// faults at exactly the same first global pattern index. The pattern
    /// count range forces partially-filled final blocks at every width.
    #[test]
    fn wide_word_matches_u64_at_every_lane_count(
        seed in any::<u64>(),
        gates in 40usize..150,
        inputs in 4usize..12,
        dffs in 0usize..8,
        n_patterns in 1usize..600,
        pattern_seed in any::<u64>(),
    ) {
        let c = synthesize(&SynthConfig {
            gates,
            inputs,
            dffs,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        // Lane count 1 is the historical u64 path; it is the reference.
        let narrow = first_detections::<1>(&c, n_patterns, pattern_seed);
        let mid = first_detections::<4>(&c, n_patterns, pattern_seed);
        let wide = first_detections::<8>(&c, n_patterns, pattern_seed);
        prop_assert_eq!(&mid, &narrow, "4-lane first detections diverged");
        prop_assert_eq!(&wide, &narrow, "8-lane first detections diverged");

        // Early-exit masks stop at the first detecting lane, but the
        // detected-fault set must not depend on the width.
        let d1 = detected_early_exit::<1>(&c, n_patterns, pattern_seed);
        let d4 = detected_early_exit::<4>(&c, n_patterns, pattern_seed);
        let d8 = detected_early_exit::<8>(&c, n_patterns, pattern_seed);
        prop_assert_eq!(&d4, &d1, "4-lane early-exit detection diverged");
        prop_assert_eq!(&d8, &d1, "8-lane early-exit detection diverged");

        // And early exit agrees with the position-reporting path.
        let from_positions: Vec<bool> = {
            let mut set = vec![false; d1.len()];
            for &(fi, _) in &narrow {
                set[fi] = true;
            }
            set
        };
        prop_assert_eq!(&d1, &from_positions, "early exit changed the detected set");
    }
}
