//! Property test: the cone-restricted PPSFP simulator agrees with a
//! brute-force whole-circuit faulty simulation on random circuits and
//! random pattern blocks.

use eea_faultsim::{Fault, FaultSim, FaultUniverse, GoodSim, ParFaultSim, PatternBlock};
use eea_netlist::{synthesize, Circuit, SynthConfig};
use proptest::prelude::*;

/// Brute-force oracle: simulate the entire faulty circuit without cone
/// restriction and diff the observable response.
fn oracle_detect(c: &Circuit, f: Fault, block: &PatternBlock) -> u64 {
    use eea_faultsim::FaultSite;
    let forced = if f.stuck_at { u64::MAX } else { 0 };
    let mut vals = vec![0u64; c.num_gates()];
    for (i, &pi) in c.inputs().iter().enumerate() {
        vals[pi.index()] = block.word(i);
    }
    let npi = c.num_inputs();
    for (i, &ff) in c.dffs().iter().enumerate() {
        vals[ff.index()] = block.word(npi + i);
    }
    if let FaultSite::Stem(g) = f.site {
        if c.kind(g).is_combinational_source() {
            vals[g.index()] = forced;
        }
    }
    for &g in c.topo_order() {
        let mut fanin: Vec<u64> = c.fanin(g).iter().map(|&x| vals[x.index()]).collect();
        if let FaultSite::Pin { gate, pin } = f.site {
            if gate == g {
                fanin[pin as usize] = forced;
            }
        }
        let mut v = c.kind(g).eval_words(&fanin);
        if let FaultSite::Stem(s) = f.site {
            if s == g {
                v = forced;
            }
        }
        vals[g.index()] = v;
    }
    let mut good = GoodSim::new(c);
    good.run(block);
    let mut det = 0u64;
    for &o in c.outputs() {
        det |= vals[o.index()] ^ good.value(o);
    }
    for &ff in c.dffs() {
        let d = c.fanin(ff)[0];
        let mut fv = vals[d.index()];
        if let FaultSite::Pin { gate, .. } = f.site {
            if gate == ff {
                fv = forced;
            }
        }
        det |= fv ^ good.value(d);
    }
    det & block.mask()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ppsfp_matches_oracle(
        seed in any::<u64>(),
        gates in 30usize..120,
        inputs in 4usize..12,
        dffs in 0usize..8,
        pattern_seed in any::<u64>(),
    ) {
        let c = synthesize(&SynthConfig {
            gates,
            inputs,
            dffs,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut block = PatternBlock::zeroed(&c, 64);
        let mut s = pattern_seed | 1;
        for i in 0..c.pattern_width() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            *block.word_mut(i) = s;
        }
        let universe = FaultUniverse::collapsed(&c);
        let mut sim = FaultSim::new(&c);
        sim.run_good(&block);
        for fi in 0..universe.num_faults() {
            let fault = universe.fault(fi);
            let fast = sim.detect_mask(fault, &block, false);
            let slow = oracle_detect(&c, fault, &block);
            prop_assert_eq!(fast, slow, "fault {} disagrees", fault);
        }
    }

    #[test]
    fn coverage_is_monotone_in_patterns(seed in any::<u64>()) {
        let c = synthesize(&SynthConfig {
            gates: 80,
            inputs: 8,
            dffs: 4,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut universe = FaultUniverse::collapsed(&c);
        let mut sim = FaultSim::new(&c);
        let mut s = seed | 1;
        let mut last = 0.0;
        for _ in 0..6 {
            let mut block = PatternBlock::zeroed(&c, 64);
            for i in 0..c.pattern_width() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                *block.word_mut(i) = s;
            }
            sim.detect_block(&block, &mut universe);
            prop_assert!(universe.coverage() >= last);
            last = universe.coverage();
        }
    }

    #[test]
    fn parallel_detection_matches_serial(
        seed in any::<u64>(),
        gates in 60usize..200,
        threads in 2usize..9,
        blocks in 1usize..5,
    ) {
        let c = synthesize(&SynthConfig {
            gates,
            inputs: 10,
            dffs: 6,
            seed,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut serial_u = FaultUniverse::collapsed(&c);
        let mut parallel_u = FaultUniverse::collapsed(&c);
        let mut serial = FaultSim::new(&c);
        let mut parallel = ParFaultSim::new(&c, threads);
        let mut s = seed | 1;
        for _ in 0..blocks {
            let mut block = PatternBlock::zeroed(&c, 64);
            for i in 0..c.pattern_width() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                *block.word_mut(i) = s;
            }
            let ns = serial.detect_block(&block, &mut serial_u);
            let np = parallel.detect_block(&block, &mut parallel_u);
            prop_assert_eq!(ns, np, "detection count diverged");
            let sp = serial.detect_block_with_positions(&block, &mut serial_u);
            let pp = parallel.detect_block_with_positions(&block, &mut parallel_u);
            prop_assert_eq!(sp, pp, "first-detection positions diverged");
        }
        prop_assert_eq!(serial_u.num_live(), parallel_u.num_live());
        for fi in 0..serial_u.num_faults() {
            prop_assert_eq!(serial_u.is_detected(fi), parallel_u.is_detected(fi));
        }
    }
}
