//! Wide pattern words: fixed-lane `[u64; LANES]` blocks.
//!
//! The simulation stack is generic over the pattern-word width. A
//! [`BitBlock<LANES>`] packs `64 * LANES` patterns, one per bit; every
//! bitwise operation runs lane-parallel over a fixed-size array, a shape
//! LLVM autovectorizes into SIMD loads/ops on any target with vector
//! registers (two 256-bit AVX2 ops cover the default 8-lane word). Lane 1
//! (`BitBlock<1>`) is bit-for-bit the classic `u64` path, which is what
//! the wide-vs-narrow oracle proptests compare against.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

use eea_netlist::SimWord;

/// Lane count of the default pattern word: `8 × u64` = 512 patterns per
/// simulation pass. [`crate::PatternBlock`], [`crate::FaultSim`] and the
/// rest of the default-width aliases are pinned to this; the generic
/// `Wide*` types accept any lane count (1 and 4 are exercised by the
/// oracle tests).
pub const DEFAULT_LANES: usize = 8;

/// A pattern word of `64 * L` bits, stored as `L` little-endian `u64`
/// lanes: bit `j` of the block is bit `j % 64` of lane `j / 64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitBlock<const L: usize>([u64; L]);

impl<const L: usize> BitBlock<L> {
    /// Number of pattern bits the block holds.
    pub const BITS: usize = 64 * L;

    /// The all-zeros block.
    pub const ZEROS: Self = BitBlock([0; L]);

    /// The all-ones block.
    pub const ONES: Self = BitBlock([u64::MAX; L]);

    /// Builds a block whose lane 0 is `w` and whose other lanes are zero
    /// — the embedding of a classic `u64` pattern word.
    #[inline]
    pub fn from_u64(w: u64) -> Self {
        let mut lanes = [0u64; L];
        lanes[0] = w;
        BitBlock(lanes)
    }

    /// The raw lanes.
    #[inline]
    pub fn lanes(&self) -> &[u64; L] {
        &self.0
    }

    /// Mutable access to the raw lanes.
    #[inline]
    pub fn lanes_mut(&mut self) -> &mut [u64; L] {
        &mut self.0
    }

    /// A block with the low `n` bits set (`n <= BITS`); `n == BITS` yields
    /// all ones. The wide analogue of `(1u64 << n) - 1`.
    #[inline]
    pub fn low_mask(n: usize) -> Self {
        debug_assert!(n <= Self::BITS);
        let mut lanes = [0u64; L];
        let full = n / 64;
        for lane in lanes.iter_mut().take(full) {
            *lane = u64::MAX;
        }
        let rem = n % 64;
        if rem > 0 && full < L {
            lanes[full] = (1u64 << rem) - 1;
        }
        BitBlock(lanes)
    }

    /// Whether any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        // `fold` over the lanes (not `iter().any`) keeps the loop
        // branch-free and vectorizable.
        self.0.iter().fold(0u64, |acc, &w| acc | w) != 0
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        !self.any()
    }

    /// Value of bit `j`.
    #[inline]
    pub fn bit(&self, j: usize) -> bool {
        debug_assert!(j < Self::BITS);
        (self.0[j / 64] >> (j % 64)) & 1 == 1
    }

    /// Sets bit `j` to `value`.
    #[inline]
    pub fn set_bit(&mut self, j: usize, value: bool) {
        debug_assert!(j < Self::BITS);
        if value {
            self.0[j / 64] |= 1 << (j % 64);
        } else {
            self.0[j / 64] &= !(1 << (j % 64));
        }
    }

    /// Index of the lowest set bit, or `BITS as u32` when the block is
    /// zero — the same convention as `u64::trailing_zeros`.
    #[inline]
    pub fn trailing_zeros(&self) -> u32 {
        for (k, &w) in self.0.iter().enumerate() {
            if w != 0 {
                return (k * 64) as u32 + w.trailing_zeros();
            }
        }
        Self::BITS as u32
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates the indices of the set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().enumerate().flat_map(|(k, &lane)| {
            // Only non-zero values are yielded (and passed to the successor
            // closure), so `w - 1` cannot underflow.
            std::iter::successors((lane != 0).then_some(lane), |&w| {
                let rest = w & (w - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |w| (k * 64) as u32 + w.trailing_zeros())
        })
    }
}

impl<const L: usize> Default for BitBlock<L> {
    fn default() -> Self {
        Self::ZEROS
    }
}

impl<const L: usize> fmt::Debug for BitBlock<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Most-significant lane first, so the rendering reads as one wide
        // hex number.
        write!(f, "BitBlock<{L}>(0x")?;
        for &lane in self.0.iter().rev() {
            write!(f, "{lane:016x}")?;
        }
        write!(f, ")")
    }
}

impl<const L: usize> BitAnd for BitBlock<L> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        BitBlock(std::array::from_fn(|k| self.0[k] & rhs.0[k]))
    }
}

impl<const L: usize> BitOr for BitBlock<L> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        BitBlock(std::array::from_fn(|k| self.0[k] | rhs.0[k]))
    }
}

impl<const L: usize> BitXor for BitBlock<L> {
    type Output = Self;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        BitBlock(std::array::from_fn(|k| self.0[k] ^ rhs.0[k]))
    }
}

impl<const L: usize> Not for BitBlock<L> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        BitBlock(std::array::from_fn(|k| !self.0[k]))
    }
}

impl<const L: usize> BitAndAssign for BitBlock<L> {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        for k in 0..L {
            self.0[k] &= rhs.0[k];
        }
    }
}

impl<const L: usize> BitOrAssign for BitBlock<L> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        for k in 0..L {
            self.0[k] |= rhs.0[k];
        }
    }
}

impl<const L: usize> BitXorAssign for BitBlock<L> {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Self) {
        for k in 0..L {
            self.0[k] ^= rhs.0[k];
        }
    }
}

impl<const L: usize> SimWord for BitBlock<L> {
    const ZEROS: Self = Self::ZEROS;
    const ONES: Self = Self::ONES;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_mask_boundaries() {
        assert_eq!(BitBlock::<4>::low_mask(0), BitBlock::ZEROS);
        assert_eq!(BitBlock::<4>::low_mask(256), BitBlock::ONES);
        let m = BitBlock::<4>::low_mask(65);
        assert_eq!(m.lanes()[0], u64::MAX);
        assert_eq!(m.lanes()[1], 1);
        assert_eq!(m.lanes()[2], 0);
        assert_eq!(m.count_ones(), 65);
    }

    #[test]
    fn lane1_matches_u64_semantics() {
        for w in [0u64, 1, 0xFFFF_0000_FFFF_0000, u64::MAX] {
            let b = BitBlock::<1>::from_u64(w);
            assert_eq!(b.trailing_zeros(), w.trailing_zeros());
            assert_eq!(b.count_ones(), w.count_ones());
            assert_eq!(b.any(), w != 0);
            assert_eq!((!b).lanes()[0], !w);
        }
    }

    #[test]
    fn bit_set_get_across_lanes() {
        let mut b = BitBlock::<4>::ZEROS;
        for j in [0usize, 63, 64, 127, 200, 255] {
            assert!(!b.bit(j));
            b.set_bit(j, true);
            assert!(b.bit(j));
        }
        assert_eq!(b.count_ones(), 6);
        assert_eq!(b.trailing_zeros(), 0);
        b.set_bit(0, false);
        assert_eq!(b.trailing_zeros(), 63);
        let ones: Vec<u32> = b.iter_ones().collect();
        assert_eq!(ones, vec![63, 64, 127, 200, 255]);
    }

    #[test]
    fn trailing_zeros_of_zero_is_bits() {
        assert_eq!(BitBlock::<8>::ZEROS.trailing_zeros(), 512);
        assert_eq!(BitBlock::<1>::ZEROS.trailing_zeros(), 64);
    }

    #[test]
    fn bitwise_ops_are_lanewise() {
        let mut a = BitBlock::<2>::ZEROS;
        a.lanes_mut()[0] = 0b1100;
        a.lanes_mut()[1] = 0xF0;
        let mut b = BitBlock::<2>::ZEROS;
        b.lanes_mut()[0] = 0b1010;
        b.lanes_mut()[1] = 0x0F;
        assert_eq!((a & b).lanes(), &[0b1000, 0x00]);
        assert_eq!((a | b).lanes(), &[0b1110, 0xFF]);
        assert_eq!((a ^ b).lanes(), &[0b0110, 0xFF]);
        let mut c = a;
        c &= b;
        assert_eq!(c, a & b);
        c = a;
        c |= b;
        assert_eq!(c, a | b);
        c = a;
        c ^= b;
        assert_eq!(c, a ^ b);
    }

    #[test]
    fn iter_ones_full_block() {
        let all: Vec<u32> = BitBlock::<1>::ONES.iter_ones().collect();
        assert_eq!(all.len(), 64);
        assert_eq!(all[0], 0);
        assert_eq!(all[63], 63);
    }

    #[test]
    fn debug_renders_wide_hex() {
        let b = BitBlock::<2>::from_u64(0xAB);
        assert_eq!(
            format!("{b:?}"),
            "BitBlock<2>(0x000000000000000000000000000000ab)"
        );
    }
}
