use eea_netlist::{Circuit, GateId};

use crate::block::{BitBlock, DEFAULT_LANES};

/// Up to `64 * L` test patterns, bit-packed one pattern per bit position.
///
/// A pattern assigns values to the full-scan *pattern sources*: the primary
/// inputs (first, in `Circuit::inputs()` order) followed by the flip-flops
/// (in `Circuit::dffs()` order). `words[i]` holds the value of source `i`
/// across all patterns: bit `j` is the value in pattern `j`. The default
/// width is [`PatternBlock`] (8 lanes, 512 patterns); `WidePatternBlock<1>`
/// is the classic 64-pattern `u64` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidePatternBlock<const L: usize> {
    words: Vec<BitBlock<L>>,
    count: u32,
}

/// The default-width pattern block: [`DEFAULT_LANES`] lanes.
pub type PatternBlock = WidePatternBlock<DEFAULT_LANES>;

impl<const L: usize> WidePatternBlock<L> {
    /// Maximum number of patterns a block of this width holds.
    pub const CAPACITY: usize = 64 * L;

    /// Creates an all-zero block of `count` patterns for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `count > Self::CAPACITY`.
    pub fn zeroed(circuit: &Circuit, count: usize) -> Self {
        assert!(
            (1..=Self::CAPACITY).contains(&count),
            "block holds 1..={} patterns",
            Self::CAPACITY
        );
        WidePatternBlock {
            words: vec![BitBlock::ZEROS; circuit.pattern_width()],
            count: count as u32,
        }
    }

    /// Builds a block from per-pattern bit vectors (`patterns[j][i]` = value
    /// of source `i` in pattern `j`).
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty, holds more than `Self::CAPACITY`
    /// patterns, or a pattern's length differs from
    /// `circuit.pattern_width()`.
    pub fn from_patterns(circuit: &Circuit, patterns: &[Vec<bool>]) -> Self {
        assert!(
            (1..=Self::CAPACITY).contains(&patterns.len()),
            "block holds 1..={} patterns",
            Self::CAPACITY
        );
        let width = circuit.pattern_width();
        let mut words = vec![BitBlock::ZEROS; width];
        for (j, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), width, "pattern width mismatch");
            for (i, &bit) in p.iter().enumerate() {
                if bit {
                    words[i].set_bit(j, true);
                }
            }
        }
        WidePatternBlock {
            words,
            count: patterns.len() as u32,
        }
    }

    /// Exhaustive block covering all input combinations. Only possible when
    /// `2.pow(pattern_width()) <= Self::CAPACITY` (9 sources at the default
    /// width, 6 at lane count 1); returns `None` otherwise.
    pub fn exhaustive(circuit: &Circuit) -> Option<Self> {
        let width = circuit.pattern_width();
        if width >= usize::BITS as usize || (1usize << width) > Self::CAPACITY {
            return None;
        }
        let count = 1usize << width;
        let mut words = vec![BitBlock::ZEROS; width];
        for j in 0..count {
            for (i, word) in words.iter_mut().enumerate() {
                if (j >> i) & 1 == 1 {
                    word.set_bit(j, true);
                }
            }
        }
        Some(WidePatternBlock {
            words,
            count: count as u32,
        })
    }

    /// Number of patterns in the block (`1..=Self::CAPACITY`).
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the block holds no patterns (never true for a constructed
    /// block; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bit mask with one bit set per valid pattern.
    #[inline]
    pub fn mask(&self) -> BitBlock<L> {
        BitBlock::low_mask(self.count as usize)
    }

    /// The packed word of source `i`.
    #[inline]
    pub fn word(&self, i: usize) -> BitBlock<L> {
        self.words[i]
    }

    /// Mutable access to the packed word of source `i`.
    #[inline]
    pub fn word_mut(&mut self, i: usize) -> &mut BitBlock<L> {
        &mut self.words[i]
    }

    /// Fills every lane of every source word from `next` (lane order within
    /// each source) — the width-agnostic way to fill a block with raw
    /// random words. At lane count 1 the fill order equals the historical
    /// one-`u64`-per-source sequence.
    pub fn fill_words(&mut self, mut next: impl FnMut() -> u64) {
        for w in &mut self.words {
            for lane in w.lanes_mut() {
                *lane = next();
            }
        }
    }

    /// Sets the value of source `i` in pattern `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(j < self.count as usize);
        self.words[i].set_bit(j, value);
    }

    /// Value of source `i` in pattern `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.words[i].bit(j)
    }

    /// Extracts pattern `j` as a bit vector.
    pub fn pattern(&self, j: usize) -> Vec<bool> {
        assert!(j < self.count as usize, "pattern index out of range");
        self.words.iter().map(|w| w.bit(j)).collect()
    }
}

/// A bit-parallel response: the values observed at primary outputs followed
/// by flip-flop data inputs, packed like [`WidePatternBlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideResponse<const L: usize> {
    words: Vec<BitBlock<L>>,
    count: u32,
}

/// The default-width response: [`DEFAULT_LANES`] lanes.
pub type Response = WideResponse<DEFAULT_LANES>;

impl<const L: usize> WideResponse<L> {
    /// Number of patterns the response covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the response covers no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Packed word of observation point `i` (outputs first, then FF data
    /// inputs).
    #[inline]
    pub fn word(&self, i: usize) -> BitBlock<L> {
        self.words[i]
    }

    /// Value observed at point `i` in pattern `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.words[i].bit(j)
    }

    /// Number of observation points.
    #[inline]
    pub fn width(&self) -> usize {
        self.words.len()
    }

    /// The response of pattern `j` as a bit vector.
    pub fn pattern(&self, j: usize) -> Vec<bool> {
        assert!(j < self.count as usize, "pattern index out of range");
        self.words.iter().map(|w| w.bit(j)).collect()
    }
}

/// Bit-parallel good-machine simulator for the full-scan combinational core.
///
/// Reusable across blocks: internal buffers — including the fanin gather
/// scratch — are allocated once per simulator, so the per-block hot path is
/// allocation-free.
#[derive(Debug)]
pub struct WideGoodSim<'c, const L: usize> {
    circuit: &'c Circuit,
    values: Vec<BitBlock<L>>,
    /// Reusable fanin-value gather buffer: one scratch allocation per
    /// simulator instead of one `Vec` per [`run`](Self::run) call.
    fanin_buf: Vec<BitBlock<L>>,
}

/// The default-width good-machine simulator: [`DEFAULT_LANES`] lanes.
pub type GoodSim<'c> = WideGoodSim<'c, DEFAULT_LANES>;

impl<'c, const L: usize> WideGoodSim<'c, L> {
    /// Creates a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        WideGoodSim {
            circuit,
            values: vec![BitBlock::ZEROS; circuit.num_gates()],
            fanin_buf: Vec::with_capacity(8),
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Simulates one block and leaves per-gate values accessible via
    /// [`value`](Self::value).
    pub fn run(&mut self, block: &WidePatternBlock<L>) {
        let c = self.circuit;
        for (i, &pi) in c.inputs().iter().enumerate() {
            self.values[pi.index()] = block.word(i);
        }
        let n_pi = c.num_inputs();
        for (i, &ff) in c.dffs().iter().enumerate() {
            self.values[ff.index()] = block.word(n_pi + i);
        }
        // Take/restore keeps the borrow checker out of the evaluation loop
        // while the scratch stays owned by the simulator.
        let mut fanin_buf = std::mem::take(&mut self.fanin_buf);
        for &g in c.topo_order() {
            fanin_buf.clear();
            fanin_buf.extend(c.fanin(g).iter().map(|&f| self.values[f.index()]));
            self.values[g.index()] = c.kind(g).eval(&fanin_buf);
        }
        self.fanin_buf = fanin_buf;
    }

    /// The simulated word of gate `g` (valid after [`run`](Self::run)).
    #[inline]
    pub fn value(&self, g: GateId) -> BitBlock<L> {
        self.values[g.index()]
    }

    /// All gate values (indexed by gate id), valid after [`run`](Self::run).
    #[inline]
    pub fn values(&self) -> &[BitBlock<L>] {
        &self.values
    }

    /// Extracts the observable response (primary outputs, then flip-flop
    /// data inputs) of the last simulated block.
    pub fn response(&self, block: &WidePatternBlock<L>) -> WideResponse<L> {
        let c = self.circuit;
        let mask = block.mask();
        let mut words = Vec::with_capacity(c.response_width());
        for &o in c.outputs() {
            words.push(self.values[o.index()] & mask);
        }
        for &ff in c.dffs() {
            let d = c.fanin(ff)[0];
            words.push(self.values[d.index()] & mask);
        }
        WideResponse {
            words,
            count: block.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;
    use eea_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn c17_known_vector() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        // Inputs in declaration order: 1, 2, 3, 6, 7.
        // Pattern 00000 -> 10=1, 11=1, 16=1, 19=1, 22=NAND(1,1)=0, 23=0.
        // Pattern 11111 -> 10=0, 11=0, 16=1, 19=1, 22=1, 23=0.
        let block =
            PatternBlock::from_patterns(&c, &[vec![false; 5], vec![true; 5]]);
        let mut sim = GoodSim::new(&c);
        sim.run(&block);
        let r = sim.response(&block);
        assert_eq!(r.pattern(0), vec![false, false]); // 22, 23
        assert_eq!(r.pattern(1), vec![true, false]);
    }

    #[test]
    fn exhaustive_block_width() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let b = PatternBlock::exhaustive(&c).expect("5 inputs fit");
        assert_eq!(b.len(), 32);
        assert!(b.get(0, 1));
        assert!(!b.get(0, 0));
        assert!(b.get(4, 16));
    }

    #[test]
    fn exhaustive_refuses_wide_circuits() {
        // 10 sources = 1024 combinations: beyond even the 512-pattern
        // default block. A narrow 1-lane block already refuses 7 sources.
        let wide = |n: usize| {
            let mut bld = CircuitBuilder::new();
            let ins: Vec<_> = (0..n).map(|i| bld.input(&format!("i{i}"))).collect();
            let g = bld.gate(GateKind::And, &ins, "g");
            bld.output(g);
            bld.finish().unwrap()
        };
        assert!(PatternBlock::exhaustive(&wide(10)).is_none());
        assert!(WidePatternBlock::<1>::exhaustive(&wide(7)).is_none());
        // 7 sources fit the default width: 128 patterns.
        assert_eq!(PatternBlock::exhaustive(&wide(7)).map(|b| b.len()), Some(128));
    }

    #[test]
    fn set_get_roundtrip() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut b = PatternBlock::zeroed(&c, 10);
        b.set(2, 7, true);
        assert!(b.get(2, 7));
        assert!(!b.get(2, 6));
        b.set(2, 7, false);
        assert!(!b.get(2, 7));
    }

    #[test]
    fn dff_response_observed() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let block = PatternBlock::zeroed(&c, 1);
        let mut sim = GoodSim::new(&c);
        sim.run(&block);
        let r = sim.response(&block);
        // 1 PO + 3 FF data inputs.
        assert_eq!(r.width(), 4);
    }

    #[test]
    fn mask_full_and_partial() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        assert_eq!(
            PatternBlock::zeroed(&c, PatternBlock::CAPACITY).mask(),
            crate::BitBlock::ONES
        );
        assert_eq!(
            PatternBlock::zeroed(&c, 3).mask(),
            crate::BitBlock::from_u64(0b111)
        );
        // Partial fills beyond lane 0 mask correctly too.
        let m = PatternBlock::zeroed(&c, 100).mask();
        assert_eq!(m.count_ones(), 100);
        assert_eq!(m.lanes()[0], u64::MAX);
    }

    #[test]
    fn pattern_extraction() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let p0 = vec![true, false, true, false, true];
        let p1 = vec![false, true, false, true, false];
        let b = PatternBlock::from_patterns(&c, &[p0.clone(), p1.clone()]);
        assert_eq!(b.pattern(0), p0);
        assert_eq!(b.pattern(1), p1);
    }

    #[test]
    fn wide_patterns_beyond_lane_zero() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        // 100 patterns: pattern 80 lives in lane 1 of the default block.
        let patterns: Vec<Vec<bool>> = (0..100)
            .map(|j| (0..5).map(|i| (j >> i) & 1 == 1).collect())
            .collect();
        let b = PatternBlock::from_patterns(&c, &patterns);
        assert_eq!(b.len(), 100);
        for (j, p) in patterns.iter().enumerate() {
            assert_eq!(&b.pattern(j), p, "pattern {j}");
        }
        let mut sim = GoodSim::new(&c);
        sim.run(&b);
        let r = sim.response(&b);
        // Pattern 31 = all-ones inputs: same expectation as c17_known_vector.
        assert_eq!(r.pattern(31), vec![true, false]);
    }
}
