use eea_netlist::{Circuit, GateId};

/// Up to 64 test patterns, bit-packed one pattern per bit position.
///
/// A pattern assigns values to the full-scan *pattern sources*: the primary
/// inputs (first, in `Circuit::inputs()` order) followed by the flip-flops
/// (in `Circuit::dffs()` order). `words[i]` holds the value of source `i`
/// across all patterns: bit `j` is the value in pattern `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    words: Vec<u64>,
    count: u32,
}

impl PatternBlock {
    /// Creates an all-zero block of `count` patterns for `circuit`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `count > 64`.
    pub fn zeroed(circuit: &Circuit, count: usize) -> Self {
        assert!((1..=64).contains(&count), "block holds 1..=64 patterns");
        PatternBlock {
            words: vec![0; circuit.pattern_width()],
            count: count as u32,
        }
    }

    /// Builds a block from per-pattern bit vectors (`patterns[j][i]` = value
    /// of source `i` in pattern `j`).
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty, holds more than 64 patterns, or a
    /// pattern's length differs from `circuit.pattern_width()`.
    pub fn from_patterns(circuit: &Circuit, patterns: &[Vec<bool>]) -> Self {
        assert!(
            (1..=64).contains(&patterns.len()),
            "block holds 1..=64 patterns"
        );
        let width = circuit.pattern_width();
        let mut words = vec![0u64; width];
        for (j, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), width, "pattern width mismatch");
            for (i, &bit) in p.iter().enumerate() {
                if bit {
                    words[i] |= 1 << j;
                }
            }
        }
        PatternBlock {
            words,
            count: patterns.len() as u32,
        }
    }

    /// Exhaustive block covering all input combinations. Only possible when
    /// `pattern_width() <= 6` (at most 64 combinations); returns `None`
    /// otherwise.
    pub fn exhaustive(circuit: &Circuit) -> Option<Self> {
        let width = circuit.pattern_width();
        if width > 6 {
            return None;
        }
        let count = 1usize << width;
        let mut words = vec![0u64; width];
        for j in 0..count {
            for (i, word) in words.iter_mut().enumerate() {
                if (j >> i) & 1 == 1 {
                    *word |= 1 << j;
                }
            }
        }
        Some(PatternBlock {
            words,
            count: count as u32,
        })
    }

    /// Number of patterns in the block (1..=64).
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the block holds no patterns (never true for a constructed
    /// block; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bit mask with one bit set per valid pattern.
    #[inline]
    pub fn mask(&self) -> u64 {
        if self.count == 64 {
            u64::MAX
        } else {
            (1u64 << self.count) - 1
        }
    }

    /// The packed word of source `i`.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Mutable access to the packed word of source `i`.
    #[inline]
    pub fn word_mut(&mut self, i: usize) -> &mut u64 {
        &mut self.words[i]
    }

    /// Sets the value of source `i` in pattern `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(j < self.count as usize);
        if value {
            self.words[i] |= 1 << j;
        } else {
            self.words[i] &= !(1 << j);
        }
    }

    /// Value of source `i` in pattern `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        (self.words[i] >> j) & 1 == 1
    }

    /// Extracts pattern `j` as a bit vector.
    pub fn pattern(&self, j: usize) -> Vec<bool> {
        assert!(j < self.count as usize, "pattern index out of range");
        self.words.iter().map(|&w| (w >> j) & 1 == 1).collect()
    }
}

/// A bit-parallel response: the values observed at primary outputs followed
/// by flip-flop data inputs, packed like [`PatternBlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    words: Vec<u64>,
    count: u32,
}

impl Response {
    /// Number of patterns the response covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the response covers no patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Packed word of observation point `i` (outputs first, then FF data
    /// inputs).
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Number of observation points.
    #[inline]
    pub fn width(&self) -> usize {
        self.words.len()
    }

    /// The response of pattern `j` as a bit vector.
    pub fn pattern(&self, j: usize) -> Vec<bool> {
        assert!(j < self.count as usize, "pattern index out of range");
        self.words.iter().map(|&w| (w >> j) & 1 == 1).collect()
    }
}

/// Bit-parallel good-machine simulator for the full-scan combinational core.
///
/// Reusable across blocks: internal buffers are allocated once.
#[derive(Debug)]
pub struct GoodSim<'c> {
    circuit: &'c Circuit,
    values: Vec<u64>,
}

impl<'c> GoodSim<'c> {
    /// Creates a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        GoodSim {
            circuit,
            values: vec![0; circuit.num_gates()],
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Simulates one block and leaves per-gate values accessible via
    /// [`value`](Self::value).
    pub fn run(&mut self, block: &PatternBlock) {
        let c = self.circuit;
        for (i, &pi) in c.inputs().iter().enumerate() {
            self.values[pi.index()] = block.word(i);
        }
        let n_pi = c.num_inputs();
        for (i, &ff) in c.dffs().iter().enumerate() {
            self.values[ff.index()] = block.word(n_pi + i);
        }
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &g in c.topo_order() {
            fanin_buf.clear();
            fanin_buf.extend(c.fanin(g).iter().map(|&f| self.values[f.index()]));
            self.values[g.index()] = c.kind(g).eval_words(&fanin_buf);
        }
    }

    /// The simulated word of gate `g` (valid after [`run`](Self::run)).
    #[inline]
    pub fn value(&self, g: GateId) -> u64 {
        self.values[g.index()]
    }

    /// All gate values (indexed by gate id), valid after [`run`](Self::run).
    #[inline]
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Extracts the observable response (primary outputs, then flip-flop
    /// data inputs) of the last simulated block.
    pub fn response(&self, block: &PatternBlock) -> Response {
        let c = self.circuit;
        let mut words = Vec::with_capacity(c.response_width());
        for &o in c.outputs() {
            words.push(self.values[o.index()] & block.mask());
        }
        for &ff in c.dffs() {
            let d = c.fanin(ff)[0];
            words.push(self.values[d.index()] & block.mask());
        }
        Response {
            words,
            count: block.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;
    use eea_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn c17_known_vector() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        // Inputs in declaration order: 1, 2, 3, 6, 7.
        // Pattern 00000 -> 10=1, 11=1, 16=1, 19=1, 22=NAND(1,1)=0, 23=0.
        // Pattern 11111 -> 10=0, 11=0, 16=1, 19=1, 22=1, 23=0.
        let block =
            PatternBlock::from_patterns(&c, &[vec![false; 5], vec![true; 5]]);
        let mut sim = GoodSim::new(&c);
        sim.run(&block);
        let r = sim.response(&block);
        assert_eq!(r.pattern(0), vec![false, false]); // 22, 23
        assert_eq!(r.pattern(1), vec![true, false]);
    }

    #[test]
    fn exhaustive_block_width() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let b = PatternBlock::exhaustive(&c).expect("5 inputs fit");
        assert_eq!(b.len(), 32);
        assert!(b.get(0, 1));
        assert!(!b.get(0, 0));
        assert!(b.get(4, 16));
    }

    #[test]
    fn exhaustive_refuses_wide_circuits() {
        let mut bld = CircuitBuilder::new();
        let ins: Vec<_> = (0..7).map(|i| bld.input(&format!("i{i}"))).collect();
        let g = bld.gate(GateKind::And, &ins, "g");
        bld.output(g);
        let c = bld.finish().unwrap();
        assert!(PatternBlock::exhaustive(&c).is_none());
    }

    #[test]
    fn set_get_roundtrip() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut b = PatternBlock::zeroed(&c, 10);
        b.set(2, 7, true);
        assert!(b.get(2, 7));
        assert!(!b.get(2, 6));
        b.set(2, 7, false);
        assert!(!b.get(2, 7));
    }

    #[test]
    fn dff_response_observed() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let block = PatternBlock::zeroed(&c, 1);
        let mut sim = GoodSim::new(&c);
        sim.run(&block);
        let r = sim.response(&block);
        // 1 PO + 3 FF data inputs.
        assert_eq!(r.width(), 4);
    }

    #[test]
    fn mask_full_and_partial() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        assert_eq!(PatternBlock::zeroed(&c, 64).mask(), u64::MAX);
        assert_eq!(PatternBlock::zeroed(&c, 3).mask(), 0b111);
    }

    #[test]
    fn pattern_extraction() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let p0 = vec![true, false, true, false, true];
        let p1 = vec![false, true, false, true, false];
        let b = PatternBlock::from_patterns(&c, &[p0.clone(), p1.clone()]);
        assert_eq!(b.pattern(0), p0);
        assert_eq!(b.pattern(1), p1);
    }
}
