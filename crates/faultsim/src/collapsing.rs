//! Structural equivalence fault collapsing.
//!
//! Two stuck-at faults are *equivalent* when every test detecting one also
//! detects the other; only one representative per equivalence class needs to
//! be simulated or targeted by ATPG. The classic gate-local rules are
//! implemented here:
//!
//! * a fanout-free connection makes the driver stem and the receiving pin
//!   the same electrical line,
//! * AND/NAND: any input stuck at the controlling value `0` is equivalent to
//!   the output stuck at `0`/`1` respectively,
//! * OR/NOR: dually with controlling value `1`,
//! * BUF/NOT: input faults map to (possibly inverted) output faults.
//!
//! The paper's CUT counts 371,900 *collapsed* faults; [`collapse`] produces
//! the analogous collapsed universe for our open circuits.

use std::collections::HashMap;

use eea_netlist::{Circuit, GateKind};

use crate::fault::{enumerate_faults, Fault, FaultSite};

/// Result of fault collapsing.
#[derive(Debug, Clone)]
pub struct CollapseReport {
    /// One representative fault per equivalence class, sorted.
    pub representatives: Vec<Fault>,
    /// Total number of faults before collapsing.
    pub total: usize,
    /// For each representative, the size of its equivalence class.
    pub class_sizes: Vec<u32>,
}

impl CollapseReport {
    /// Collapse ratio `representatives / total` (lower = more collapsing).
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.representatives.len() as f64 / self.total as f64
        }
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as root so representatives are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Collapses the complete fault universe of `circuit` into equivalence
/// classes and returns one representative per class (the fault with the
/// smallest `(site, value)` in each class).
pub fn collapse(circuit: &Circuit) -> CollapseReport {
    let all = enumerate_faults(circuit);
    let index: HashMap<Fault, u32> = all
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i as u32))
        .collect();
    let mut uf = UnionFind::new(all.len());

    // Effective fault site of the value seen at `gate`'s pin `pin`:
    // the dedicated branch site when the driver fans out, else the stem.
    let line_site = |gate, pin: usize| -> FaultSite {
        let src = circuit.fanin(gate)[pin];
        if circuit.fanout(src).len() > 1 {
            FaultSite::Pin {
                gate,
                pin: pin as u16,
            }
        } else {
            FaultSite::Stem(src)
        }
    };
    let id = |f: Fault| -> u32 { index[&f] };

    for g in circuit.gate_ids() {
        let kind = circuit.kind(g);
        let out = FaultSite::Stem(g);
        match kind {
            GateKind::Input => {}
            GateKind::Dff | GateKind::Buf => {
                // Data input faults are equivalent to output faults of the
                // same polarity. (For a scan flip-flop this links the
                // pseudo-output line to the pseudo-input of the next frame
                // only structurally — both remain observable/controllable
                // independently, so we do NOT merge across the DFF; merging
                // here is restricted to BUF.)
                if kind == GateKind::Buf {
                    let in_site = line_site(g, 0);
                    uf.union(id(Fault::sa0(in_site)), id(Fault::sa0(out)));
                    uf.union(id(Fault::sa1(in_site)), id(Fault::sa1(out)));
                }
            }
            GateKind::Not => {
                let in_site = line_site(g, 0);
                uf.union(id(Fault::sa0(in_site)), id(Fault::sa1(out)));
                uf.union(id(Fault::sa1(in_site)), id(Fault::sa0(out)));
            }
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                // These four kinds always define a controlling value; skip
                // defensively instead of unwrapping.
                let Some(ctrl) = kind.controlling_value() else {
                    continue;
                };
                // Input at controlling value c forces the output to
                // c (AND/OR) or !c (NAND/NOR).
                let out_val = if kind.inverts() { !ctrl } else { ctrl };
                for pin in 0..circuit.fanin(g).len() {
                    let in_site = line_site(g, pin);
                    let in_fault = Fault {
                        site: in_site,
                        stuck_at: ctrl,
                    };
                    let out_fault = Fault {
                        site: out,
                        stuck_at: out_val,
                    };
                    uf.union(id(in_fault), id(out_fault));
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // No gate-local equivalences.
            }
        }
    }

    // Gather classes keyed by root; the representative is the smallest
    // member (faults were enumerated in a deterministic sorted-ish order,
    // so pick min explicitly).
    let mut classes: HashMap<u32, Vec<u32>> = HashMap::new();
    for i in 0..all.len() as u32 {
        classes.entry(uf.find(i)).or_default().push(i);
    }
    let mut reps: Vec<(Fault, u32)> = classes
        .values()
        .filter_map(|members| {
            // Every class holds at least the fault that created it; `min`
            // over an empty class (impossible) simply yields no entry.
            let rep = members.iter().map(|&i| all.get(i as usize).copied()).min()??;
            Some((rep, members.len() as u32))
        })
        .collect();
    reps.sort();
    let (representatives, class_sizes): (Vec<Fault>, Vec<u32>) = reps.into_iter().unzip();
    CollapseReport {
        total: all.len(),
        representatives,
        class_sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;
    use eea_netlist::{CircuitBuilder, GateKind};

    #[test]
    fn c17_collapses_to_22() {
        // The textbook collapsed fault count for c17 is 22.
        let c = bench_format::parse(bench_format::C17).unwrap();
        let rep = collapse(&c);
        assert_eq!(rep.total, 34);
        assert_eq!(rep.representatives.len(), 22);
        assert_eq!(
            rep.class_sizes.iter().sum::<u32>() as usize,
            rep.total
        );
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        // a -> NOT -> NOT -> out: 3 lines x 2 = 6 faults, all pairwise
        // equivalent through the chain -> 2 classes.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let n1 = b.gate(GateKind::Not, &[a], "n1");
        let n2 = b.gate(GateKind::Not, &[n1], "n2");
        b.output(n2);
        let c = b.finish().unwrap();
        let rep = collapse(&c);
        assert_eq!(rep.total, 6);
        assert_eq!(rep.representatives.len(), 2);
    }

    #[test]
    fn and_gate_classes() {
        // 2-input AND, fanout-free: lines a, b, y. Faults: 6.
        // Equivalences: a/0 = b/0 = y/0 -> classes {a0,b0,y0}, {a1}, {b1},
        // {y1} = 4 classes.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let y = b.gate(GateKind::And, &[a, x], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let rep = collapse(&c);
        assert_eq!(rep.total, 6);
        assert_eq!(rep.representatives.len(), 4);
        assert!(rep.class_sizes.contains(&3));
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let y = b.gate(GateKind::Xor, &[a, x], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let rep = collapse(&c);
        assert_eq!(rep.representatives.len(), rep.total);
    }

    #[test]
    fn ratio_sane() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let rep = collapse(&c);
        assert!(rep.ratio() > 0.3 && rep.ratio() <= 1.0);
    }
}
