use std::fmt;

use eea_netlist::{Circuit, GateId};

/// A fault location: either the output *stem* of a gate or one of its
/// input-pin *branches*.
///
/// Stems and branches are distinct fault sites whenever the driving signal
/// fans out to several gates — a branch fault affects only one receiver,
/// while a stem fault affects all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The output of `GateId`.
    Stem(GateId),
    /// Input pin `pin` of gate `gate`.
    Pin {
        /// Receiving gate.
        gate: GateId,
        /// Zero-based fanin index.
        pin: u16,
    },
}

impl FaultSite {
    /// The gate whose evaluation the fault perturbs first.
    #[inline]
    pub fn gate(self) -> GateId {
        match self {
            FaultSite::Stem(g) => g,
            FaultSite::Pin { gate, .. } => gate,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Stem(g) => write!(f, "{g}"),
            FaultSite::Pin { gate, pin } => write!(f, "{gate}.in{pin}"),
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// Where the line is stuck.
    pub site: FaultSite,
    /// Stuck-at value: `false` = stuck-at-0, `true` = stuck-at-1.
    pub stuck_at: bool,
}

impl Fault {
    /// Stuck-at-0 fault at `site`.
    pub fn sa0(site: FaultSite) -> Self {
        Fault {
            site,
            stuck_at: false,
        }
    }

    /// Stuck-at-1 fault at `site`.
    pub fn sa1(site: FaultSite) -> Self {
        Fault {
            site,
            stuck_at: true,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.site, u8::from(self.stuck_at))
    }
}

/// Enumerates the complete (uncollapsed) stuck-at fault universe of a
/// circuit: two faults per gate output stem and two per input-pin branch of
/// every logic gate and flip-flop data pin.
///
/// Branch faults are only enumerated where the driver actually fans out to
/// more than one pin; for a fanout-free connection the branch is electrically
/// the same line as the stem and would be trivially equivalent.
pub fn enumerate_faults(circuit: &Circuit) -> Vec<Fault> {
    let mut faults = Vec::new();
    for g in circuit.gate_ids() {
        // Every driven line has a stem.
        faults.push(Fault::sa0(FaultSite::Stem(g)));
        faults.push(Fault::sa1(FaultSite::Stem(g)));
    }
    for g in circuit.gate_ids() {
        for (pin, &src) in circuit.fanin(g).iter().enumerate() {
            if circuit.fanout(src).len() > 1 {
                let site = FaultSite::Pin {
                    gate: g,
                    pin: pin as u16,
                };
                faults.push(Fault::sa0(site));
                faults.push(Fault::sa1(site));
            }
        }
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;

    #[test]
    fn c17_fault_count() {
        // c17: 11 lines fanout-free reading... classic count: 22 lines
        // before collapsing when counting stems + branches of multi-fanout
        // nets. Our model: 11 gates (5 PI + 6 NAND) -> 22 stem faults, plus
        // branches for nets with fanout > 1.
        let c = bench_format::parse(bench_format::C17).unwrap();
        let faults = enumerate_faults(&c);
        // Multi-fanout nets in c17: input 3 (g2), net 11, net 16 — each with
        // fanout 2 -> 4 branch faults each.
        assert_eq!(faults.len(), 22 + 12);
    }

    #[test]
    fn display_format() {
        let f = Fault::sa1(FaultSite::Stem(GateId::from_index(3)));
        assert_eq!(f.to_string(), "g3/sa1");
        let f = Fault::sa0(FaultSite::Pin {
            gate: GateId::from_index(2),
            pin: 1,
        });
        assert_eq!(f.to_string(), "g2.in1/sa0");
    }

    #[test]
    fn site_gate() {
        let g = GateId::from_index(5);
        assert_eq!(FaultSite::Stem(g).gate(), g);
        assert_eq!(FaultSite::Pin { gate: g, pin: 0 }.gate(), g);
    }
}
