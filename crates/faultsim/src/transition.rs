//! Transition-delay fault (TDF) simulation with launch-on-capture.
//!
//! The paper's fault coverage objective uses the stuck-at model, but notes
//! that "the underlying logic diagnosis algorithm is not limited to this
//! fault model". This module adds the industry's second staple: gross-delay
//! (transition) faults under the launch-on-capture (LoC) scheme natural to
//! the STUMPS flow — the scan-loaded pattern `v1` launches a transition
//! through the functional capture, and the follow-up capture of `v2`
//! observes whether the late edge arrived.
//!
//! Detection condition for a slow-to-rise fault at site `s`:
//!
//! 1. **launch**: `s` is 0 under `v1` and 1 under `v2`,
//! 2. **propagate**: the stuck-at-0 fault at `s` is detected by `v2`.
//!
//! (dually for slow-to-fall). Everything is evaluated a whole pattern
//! block at a time (512 patterns at the default width) on top of the
//! bit-parallel stuck-at machinery.

use eea_netlist::Circuit;

use crate::block::{BitBlock, DEFAULT_LANES};
use crate::fault::{enumerate_faults, Fault, FaultSite};
use crate::ppsfp::WideFaultSim;
use crate::sim::{WideGoodSim, WidePatternBlock};

/// Direction of the slow transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransitionKind {
    /// The rising edge arrives late (behaves as stuck-at-0 for one cycle).
    SlowToRise,
    /// The falling edge arrives late (behaves as stuck-at-1 for one cycle).
    SlowToFall,
}

/// A transition-delay fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionFault {
    /// Fault site (stem or branch, like stuck-at).
    pub site: FaultSite,
    /// Transition direction.
    pub kind: TransitionKind,
}

impl TransitionFault {
    /// The one-cycle stuck-at fault the late edge manifests as.
    pub fn as_stuck_at(self) -> Fault {
        match self.kind {
            TransitionKind::SlowToRise => Fault::sa0(self.site),
            TransitionKind::SlowToFall => Fault::sa1(self.site),
        }
    }
}

impl std::fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = match self.kind {
            TransitionKind::SlowToRise => "str",
            TransitionKind::SlowToFall => "stf",
        };
        write!(f, "{}/{k}", self.site)
    }
}

/// Enumerates the transition-fault universe (two directions per line,
/// sites as in [`enumerate_faults`]).
pub fn enumerate_transition_faults(circuit: &Circuit) -> Vec<TransitionFault> {
    enumerate_faults(circuit)
        .into_iter()
        .map(|f| TransitionFault {
            site: f.site,
            kind: if f.stuck_at {
                TransitionKind::SlowToFall
            } else {
                TransitionKind::SlowToRise
            },
        })
        .collect()
}

/// Derives the launch-on-capture follow-up block `v2` from `v1`: primary
/// inputs are held, flip-flops capture their data inputs.
pub fn launch_on_capture<const L: usize>(
    circuit: &Circuit,
    v1: &WidePatternBlock<L>,
) -> WidePatternBlock<L> {
    let mut sim = WideGoodSim::new(circuit);
    sim.run(v1);
    let mut v2 = WidePatternBlock::zeroed(circuit, v1.len());
    let n_pi = circuit.num_inputs();
    for i in 0..n_pi {
        *v2.word_mut(i) = v1.word(i);
    }
    for (i, &ff) in circuit.dffs().iter().enumerate() {
        let d = circuit.fanin(ff)[0];
        *v2.word_mut(n_pi + i) = sim.value(d) & v1.mask();
    }
    v2
}

/// Bit-parallel transition-fault simulator (launch-on-capture).
#[derive(Debug)]
pub struct WideTransitionSim<'c, const L: usize> {
    circuit: &'c Circuit,
    good_v1: WideGoodSim<'c, L>,
    fsim: WideFaultSim<'c, L>,
}

/// The default-width transition-fault simulator: [`DEFAULT_LANES`] lanes.
pub type TransitionSim<'c> = WideTransitionSim<'c, DEFAULT_LANES>;

impl<'c, const L: usize> WideTransitionSim<'c, L> {
    /// Creates a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        WideTransitionSim {
            circuit,
            good_v1: WideGoodSim::new(circuit),
            fsim: WideFaultSim::new(circuit),
        }
    }

    /// Prepares the simulator for a launch block `v1`; returns the derived
    /// capture block `v2`.
    pub fn load(&mut self, v1: &WidePatternBlock<L>) -> WidePatternBlock<L> {
        self.good_v1.run(v1);
        let v2 = launch_on_capture(self.circuit, v1);
        self.fsim.run_good(&v2);
        v2
    }

    /// Detection mask of `fault` for the loaded `(v1, v2)` pair: bit `j`
    /// set iff pattern `j` launches the required transition at the site
    /// *and* propagates the late value to an observation point.
    ///
    /// Must be called after [`load`](Self::load); `v2` must be the block
    /// returned by it.
    pub fn detect_mask(
        &mut self,
        fault: TransitionFault,
        v2: &WidePatternBlock<L>,
    ) -> BitBlock<L> {
        // Site value under v1 and v2 (the good machines).
        let driver = match fault.site {
            FaultSite::Stem(g) => g,
            FaultSite::Pin { gate, pin } => self.circuit.fanin(gate)[pin as usize],
        };
        let val_v1 = self.good_v1.value(driver);
        let val_v2 = self.fsim.good_sim().value(driver);
        let launch = match fault.kind {
            TransitionKind::SlowToRise => !val_v1 & val_v2,
            TransitionKind::SlowToFall => val_v1 & !val_v2,
        } & v2.mask();
        if launch.is_zero() {
            return BitBlock::ZEROS;
        }
        let propagate = self.fsim.detect_mask(fault.as_stuck_at(), v2, false);
        launch & propagate
    }
}

/// Convenience: transition-fault coverage of a pattern set, evaluated
/// block-wise. Returns `(detected, total)` over the full universe.
pub fn transition_coverage<const L: usize>(
    circuit: &Circuit,
    blocks: &[WidePatternBlock<L>],
) -> (usize, usize) {
    let universe = enumerate_transition_faults(circuit);
    let mut detected = vec![false; universe.len()];
    let mut sim = WideTransitionSim::new(circuit);
    for v1 in blocks {
        let v2 = sim.load(v1);
        for (i, &f) in universe.iter().enumerate() {
            if !detected[i] && sim.detect_mask(f, &v2).any() {
                detected[i] = true;
            }
        }
    }
    (detected.iter().filter(|&&d| d).count(), universe.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PatternBlock;
    use eea_netlist::{bench_format, synthesize, CircuitBuilder, GateKind, SynthConfig};

    #[test]
    fn launch_on_capture_updates_state() {
        // Toggle flip-flop: q' = NOT(q). Loading q=0 captures q'=1.
        let mut b = CircuitBuilder::new();
        let q = b.dff_deferred("q");
        let n = b.gate(GateKind::Not, &[q], "n");
        b.connect_dff(q, n).expect("valid connection");
        b.output(n);
        let c = b.finish().unwrap();
        let v1 = PatternBlock::from_patterns(&c, &[vec![false], vec![true]]);
        let v2 = launch_on_capture(&c, &v1);
        assert!(v2.get(0, 0), "q captured NOT(0) = 1");
        assert!(!v2.get(0, 1), "q captured NOT(1) = 0");
    }

    #[test]
    fn toggle_ff_transitions_detectable() {
        // The toggle FF launches a transition on q every cycle; both
        // directions of q's transition faults are detected through the
        // inverter to the output.
        let mut b = CircuitBuilder::new();
        let q = b.dff_deferred("q");
        let n = b.gate(GateKind::Not, &[q], "n");
        b.connect_dff(q, n).expect("valid connection");
        b.output(n);
        let c = b.finish().unwrap();
        let mut sim = TransitionSim::new(&c);
        let v1 = PatternBlock::from_patterns(&c, &[vec![false], vec![true]]);
        let v2 = sim.load(&v1);
        let str_q = TransitionFault {
            site: FaultSite::Stem(q),
            kind: TransitionKind::SlowToRise,
        };
        let stf_q = TransitionFault {
            site: FaultSite::Stem(q),
            kind: TransitionKind::SlowToFall,
        };
        // Pattern 0: q 0 -> 1 (rise); pattern 1: q 1 -> 0 (fall).
        assert_eq!(sim.detect_mask(str_q, &v2), BitBlock::from_u64(0b01));
        assert_eq!(sim.detect_mask(stf_q, &v2), BitBlock::from_u64(0b10));
    }

    #[test]
    fn no_transition_no_detection() {
        // Constant input: a PI never transitions under LoC (PIs are held).
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut sim = TransitionSim::new(&c);
        let v1 = PatternBlock::exhaustive(&c).unwrap();
        let v2 = sim.load(&v1);
        for &pi in c.inputs() {
            for kind in [TransitionKind::SlowToRise, TransitionKind::SlowToFall] {
                let f = TransitionFault {
                    site: FaultSite::Stem(pi),
                    kind,
                };
                assert!(
                    sim.detect_mask(f, &v2).is_zero(),
                    "held PI cannot launch a transition"
                );
            }
        }
    }

    #[test]
    fn tdf_coverage_nonzero_on_sequential_logic() {
        let c = synthesize(&SynthConfig {
            gates: 120,
            inputs: 8,
            dffs: 16,
            seed: 0x7DF,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut rng = 0x7DF7_DF7D_F7DFu64;
        let blocks: Vec<PatternBlock> = (0..8)
            .map(|_| {
                let mut b = PatternBlock::zeroed(&c, 64);
                for i in 0..c.pattern_width() {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    *b.word_mut(i) = BitBlock::from_u64(rng);
                }
                b
            })
            .collect();
        let (detected, total) = transition_coverage(&c, &blocks);
        assert!(total > 0);
        // TDF coverage is always below stuck-at coverage (launch is an
        // extra condition) but must be well above zero on logic fed by
        // flip-flops.
        assert!(
            detected * 10 > total,
            "only {detected}/{total} transition faults detected"
        );
    }

    #[test]
    fn tdf_detection_implies_stuck_at_detection_on_v2() {
        let c = synthesize(&SynthConfig {
            gates: 80,
            inputs: 6,
            dffs: 8,
            seed: 3,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut sim = TransitionSim::new(&c);
        let mut rng = 99u64;
        let mut v1 = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
        v1.fill_words(move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        });
        let v2 = sim.load(&v1);
        for f in enumerate_transition_faults(&c) {
            let tdf = sim.detect_mask(f, &v2);
            if tdf.any() {
                let sa = sim.fsim.detect_mask(f.as_stuck_at(), &v2, false);
                assert_eq!(tdf & sa, tdf, "{f}: TDF mask must imply stuck-at mask");
            }
        }
    }

    #[test]
    fn display_and_universe() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let u = enumerate_transition_faults(&c);
        assert_eq!(u.len(), enumerate_faults(&c).len());
        assert!(u[0].to_string().ends_with("/str") || u[0].to_string().ends_with("/stf"));
    }
}
