//! Parallel-pattern single-fault propagation (PPSFP).
//!
//! For each fault, the faulty machine is only simulated inside the fault's
//! fanout cone, event-driven in level order, on a whole pattern block at
//! once — 512 patterns at the default width ([`crate::DEFAULT_LANES`]
//! lanes), 64 at lane count 1. This is the standard workhorse algorithm
//! behind industrial fault-coverage estimation and is what makes the BIST
//! profile generation of `eea-bist` tractable on a laptop; the wide block
//! additionally amortizes the per-fault cone setup over 8× the patterns.

use eea_netlist::{Circuit, GateId, GateKind};

use crate::block::{BitBlock, DEFAULT_LANES};
use crate::fault::{Fault, FaultSite};
use crate::sim::{WideGoodSim, WidePatternBlock};
use crate::universe::FaultUniverse;

/// Bit-parallel single-fault simulator.
///
/// Holds reusable buffers; create once per circuit and feed pattern blocks.
///
/// # Example
///
/// ```
/// use eea_netlist::bench_format;
/// use eea_faultsim::{FaultSim, FaultUniverse, PatternBlock};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = bench_format::parse(bench_format::C17)?;
/// let mut sim = FaultSim::new(&c);
/// let mut universe = FaultUniverse::collapsed(&c);
/// let block = PatternBlock::exhaustive(&c).expect("5 inputs");
/// let newly = sim.detect_block(&block, &mut universe);
/// assert_eq!(newly, universe.num_faults());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WideFaultSim<'c, const L: usize> {
    circuit: &'c Circuit,
    good: WideGoodSim<'c, L>,
    faulty: Vec<BitBlock<L>>,
    stamp: Vec<u32>,
    epoch: u32,
    is_output: Vec<bool>,
    /// Event queue bucketed by logic level.
    buckets: Vec<Vec<GateId>>,
    queued: Vec<u32>,
}

/// The default-width PPSFP simulator: [`DEFAULT_LANES`] lanes.
pub type FaultSim<'c> = WideFaultSim<'c, DEFAULT_LANES>;

impl<'c, const L: usize> WideFaultSim<'c, L> {
    /// Creates a simulator for `circuit`.
    pub fn new(circuit: &'c Circuit) -> Self {
        let n = circuit.num_gates();
        let mut is_output = vec![false; n];
        for &o in circuit.outputs() {
            is_output[o.index()] = true;
        }
        let depth = circuit.depth() as usize;
        WideFaultSim {
            circuit,
            good: WideGoodSim::new(circuit),
            faulty: vec![BitBlock::ZEROS; n],
            stamp: vec![0; n],
            epoch: 0,
            is_output,
            buckets: vec![Vec::new(); depth + 1],
            queued: vec![0; n],
        }
    }

    /// Simulates the good machine for `block`; needed before
    /// [`detect_mask`](Self::detect_mask) and done implicitly by
    /// [`detect_block`](Self::detect_block).
    pub fn run_good(&mut self, block: &WidePatternBlock<L>) {
        self.good.run(block);
    }

    /// Access to the good-machine values of the last simulated block.
    pub fn good_sim(&self) -> &WideGoodSim<'c, L> {
        &self.good
    }

    /// Detection mask of `fault` under the most recently simulated block:
    /// bit `j` is set iff pattern `j` detects the fault at some observation
    /// point (primary output or flip-flop data input).
    ///
    /// When `early_exit` is true, returns as soon as any pattern — in any
    /// lane — detects the fault; the returned mask is then a nonempty
    /// subset of the full mask.
    pub fn detect_mask(
        &mut self,
        fault: Fault,
        block: &WidePatternBlock<L>,
        early_exit: bool,
    ) -> BitBlock<L> {
        let c = self.circuit;
        let mask = block.mask();
        self.epoch += 1;
        for b in &mut self.buckets {
            b.clear();
        }

        // Seed the cone with the fault effect at the origin gate.
        let forced = if fault.stuck_at {
            BitBlock::ONES
        } else {
            BitBlock::ZEROS
        };
        let origin = fault.site.gate();
        let origin_val = match fault.site {
            // Stuck output stem (including stuck primary inputs and stuck
            // flip-flop outputs, i.e. pseudo-inputs).
            FaultSite::Stem(_) => forced,
            FaultSite::Pin { gate, pin } => {
                if c.kind(gate) == GateKind::Dff {
                    // Fault on a flip-flop data pin: the pin is itself an
                    // observation point of the full-scan core.
                    let good_d = self.good.value(c.fanin(gate)[0]);
                    return (good_d ^ forced) & mask;
                }
                // Re-evaluate the receiving gate with the pin forced —
                // values fold straight off the fanin walk, no gather
                // buffer (see `eval_iter`).
                c.kind(gate).eval_iter(c.fanin(gate).iter().enumerate().map(|(i, &f)| {
                    if i == pin as usize {
                        forced
                    } else {
                        self.good.value(f)
                    }
                }))
            }
        };

        let diff0 = (origin_val ^ self.good.value(origin)) & mask;
        if diff0.is_zero() {
            return BitBlock::ZEROS;
        }
        let mut detected = BitBlock::ZEROS;
        if self.is_output[origin.index()] {
            detected |= diff0;
            if early_exit {
                return detected;
            }
        }
        self.faulty[origin.index()] = origin_val;
        self.stamp[origin.index()] = self.epoch;
        self.push_fanout(origin, diff0, &mut detected);
        if early_exit && detected.any() {
            return detected;
        }

        // Event-driven propagation in level order. Fanout always has a
        // strictly larger level, so buckets never receive events at or
        // before the level currently being drained.
        for lvl in 0..self.buckets.len() {
            let mut i = 0;
            while i < self.buckets[lvl].len() {
                let g = self.buckets[lvl][i];
                i += 1;
                let fv = c.kind(g).eval_iter(c.fanin(g).iter().map(|&f| {
                    if self.stamp[f.index()] == self.epoch {
                        self.faulty[f.index()]
                    } else {
                        self.good.value(f)
                    }
                }));
                let diff = (fv ^ self.good.value(g)) & mask;
                self.faulty[g.index()] = fv;
                self.stamp[g.index()] = self.epoch;
                if diff.is_zero() {
                    continue;
                }
                if self.is_output[g.index()] {
                    detected |= diff;
                    if early_exit {
                        return detected;
                    }
                }
                self.push_fanout(g, diff, &mut detected);
                if early_exit && detected.any() {
                    return detected;
                }
            }
        }
        detected
    }

    /// Queues the fanout of `g` for re-evaluation; flip-flop data inputs
    /// are observation points and accumulate into `detected` instead.
    fn push_fanout(&mut self, g: GateId, diff: BitBlock<L>, detected: &mut BitBlock<L>) {
        let c = self.circuit;
        for &s in c.fanout(g) {
            if c.kind(s) == GateKind::Dff {
                *detected |= diff;
                continue;
            }
            if self.queued[s.index()] != self.epoch {
                self.queued[s.index()] = self.epoch;
                self.buckets[c.level(s) as usize].push(s);
            }
        }
    }

    /// Runs the good machine on `block`, then tries every yet-undetected
    /// fault in `universe`, marking newly detected ones. Returns the number
    /// of faults newly detected by this block.
    ///
    /// Iterates the universe's live worklist, so a block late in a session
    /// costs only the remaining undetected faults, not the full universe.
    pub fn detect_block(
        &mut self,
        block: &WidePatternBlock<L>,
        universe: &mut FaultUniverse,
    ) -> usize {
        self.run_good(block);
        let mut newly = 0;
        let mut p = 0;
        while p < universe.num_live() {
            let fi = universe.live_at(p);
            let fault = universe.fault(fi);
            if self.detect_mask(fault, block, true).any() {
                // Swap-remove: the last live fault moves into position `p`.
                universe.mark_detected(fi);
                newly += 1;
            } else {
                p += 1;
            }
        }
        newly
    }

    /// Like [`detect_block`](Self::detect_block) but records, for each
    /// newly detected fault, the index (within the block) of the first
    /// detecting pattern, sorted by fault index. Used by the BIST layer for
    /// intermediate-signature bookkeeping.
    pub fn detect_block_with_positions(
        &mut self,
        block: &WidePatternBlock<L>,
        universe: &mut FaultUniverse,
    ) -> Vec<(usize, u32)> {
        self.run_good(block);
        let mut hits = Vec::new();
        let mut p = 0;
        while p < universe.num_live() {
            let fi = universe.live_at(p);
            let mask = self.detect_mask(universe.fault(fi), block, false);
            if mask.any() {
                universe.mark_detected(fi);
                hits.push((fi, mask.trailing_zeros()));
            } else {
                p += 1;
            }
        }
        hits.sort_unstable();
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PatternBlock;
    use crate::universe::FaultUniverse;
    use eea_netlist::bench_format;
    use eea_netlist::{synthesize, CircuitBuilder, GateKind, SynthConfig};

    /// The u64-style mask a default-width detect mask reduces to in tests
    /// confined to lane 0.
    fn lane0<const L: usize>(mask: BitBlock<L>) -> u64 {
        assert!(
            mask.lanes()[1..].iter().all(|&w| w == 0),
            "detections beyond lane 0"
        );
        mask.lanes()[0]
    }

    #[test]
    fn c17_exhaustive_full_coverage() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut sim = FaultSim::new(&c);
        let mut u = FaultUniverse::collapsed(&c);
        let block = PatternBlock::exhaustive(&c).unwrap();
        let newly = sim.detect_block(&block, &mut u);
        assert_eq!(newly, 22);
        assert_eq!(u.coverage(), 1.0);
    }

    #[test]
    fn and_gate_single_pattern() {
        // y = AND(a, b). Pattern (1,1) detects y/sa0, a/sa0, b/sa0;
        // it does not detect y/sa1.
        let mut b = CircuitBuilder::new();
        let a = b.input("a");
        let x = b.input("x");
        let y = b.gate(GateKind::And, &[a, x], "y");
        b.output(y);
        let c = b.finish().unwrap();
        let mut sim = FaultSim::new(&c);
        let block = PatternBlock::from_patterns(&c, &[vec![true, true]]);
        sim.run_good(&block);
        assert_eq!(
            lane0(sim.detect_mask(Fault::sa0(FaultSite::Stem(y)), &block, false)),
            1
        );
        assert_eq!(
            lane0(sim.detect_mask(Fault::sa1(FaultSite::Stem(y)), &block, false)),
            0
        );
        assert_eq!(
            lane0(sim.detect_mask(Fault::sa0(FaultSite::Stem(a)), &block, false)),
            1
        );
    }

    #[test]
    fn branch_fault_affects_single_path() {
        // m fans out to g1 = BUF(m) and g2 = BUF(m); a branch fault on
        // g1's pin must only be visible at g1's output.
        let mut b = CircuitBuilder::new();
        let s = b.input("s");
        let t = b.input("t");
        let m = b.gate(GateKind::And, &[s, t], "m");
        let g1 = b.gate(GateKind::Buf, &[m], "g1");
        let g2 = b.gate(GateKind::Buf, &[m], "g2");
        b.output(g1);
        b.output(g2);
        let c = b.finish().unwrap();
        let mut sim = FaultSim::new(&c);
        let block = PatternBlock::from_patterns(&c, &[vec![true, true]]);
        sim.run_good(&block);
        let branch = Fault::sa0(FaultSite::Pin { gate: g1, pin: 0 });
        assert_eq!(lane0(sim.detect_mask(branch, &block, false)), 1);
        let stem = Fault::sa0(FaultSite::Stem(m));
        assert_eq!(lane0(sim.detect_mask(stem, &block, false)), 1);
    }

    #[test]
    fn dff_data_pin_observed() {
        let c = bench_format::parse(bench_format::S27).unwrap();
        let mut sim = FaultSim::new(&c);
        let mut u = FaultUniverse::collapsed(&c);
        let all0 = PatternBlock::zeroed(&c, 1);
        let mut all1 = PatternBlock::zeroed(&c, 1);
        for i in 0..c.pattern_width() {
            all1.set(i, 0, true);
        }
        sim.detect_block(&all0, &mut u);
        sim.detect_block(&all1, &mut u);
        assert!(u.coverage() > 0.3, "coverage = {}", u.coverage());
    }

    #[test]
    fn early_exit_is_subset() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut sim = FaultSim::new(&c);
        let block = PatternBlock::exhaustive(&c).unwrap();
        sim.run_good(&block);
        let u = FaultUniverse::collapsed(&c);
        for fi in 0..u.num_faults() {
            let f = u.fault(fi);
            let full = sim.detect_mask(f, &block, false);
            let fast = sim.detect_mask(f, &block, true);
            assert_eq!(fast & full, fast, "early-exit mask must be a subset");
            assert_eq!(full.any(), fast.any());
        }
    }

    #[test]
    fn random_circuit_random_patterns_cover_most() {
        let c = synthesize(&SynthConfig {
            gates: 150,
            inputs: 10,
            dffs: 8,
            seed: 77,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut sim = FaultSim::new(&c);
        let mut u = FaultUniverse::collapsed(&c);
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..8 {
            let mut block = PatternBlock::zeroed(&c, 64);
            for i in 0..c.pattern_width() {
                *block.word_mut(i) = BitBlock::from_u64(next());
            }
            sim.detect_block(&block, &mut u);
        }
        // Small random-logic circuits carry redundant faults; random
        // patterns saturate around the testable share (cf. eea-atpg's
        // redundancy proofs).
        assert!(u.coverage() > 0.6, "coverage = {}", u.coverage());
    }

    #[test]
    fn full_width_block_detects_across_lanes() {
        let c = synthesize(&SynthConfig {
            gates: 150,
            inputs: 10,
            dffs: 8,
            seed: 77,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut sim = FaultSim::new(&c);
        let mut u = FaultUniverse::collapsed(&c);
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut block = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
        block.fill_words(move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        });
        sim.run_good(&block);
        // Some fault must first be detected by a pattern beyond lane 0 —
        // otherwise the wide block would be indistinguishable from narrow.
        let mut beyond_lane0 = false;
        for fi in 0..u.num_faults() {
            let mask = sim.detect_mask(u.fault(fi), &block, false);
            if mask.any() && mask.trailing_zeros() >= 64 {
                beyond_lane0 = true;
            }
        }
        sim.detect_block(&block, &mut u);
        assert!(u.coverage() > 0.6, "coverage = {}", u.coverage());
        assert!(beyond_lane0, "no detection landed beyond lane 0");
    }

    #[test]
    fn positions_are_first_detecting_pattern() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut sim = FaultSim::new(&c);
        let mut u = FaultUniverse::collapsed(&c);
        let block = PatternBlock::exhaustive(&c).unwrap();
        let hits = sim.detect_block_with_positions(&block, &mut u);
        assert_eq!(hits.len(), 22);
        for &(fi, pos) in &hits {
            let full = sim.detect_mask(u.fault(fi), &block, false);
            assert_eq!(full.trailing_zeros(), pos);
        }
    }
}
