//! Deterministic parallel fault simulation.
//!
//! [`ParFaultSim`] partitions the undetected-fault worklist across
//! `std::thread::scope` workers, each owning its own [`WideFaultSim`]
//! (good- and faulty-machine buffers are per-worker). Because PPSFP
//! detection of one fault is independent of every other fault — the
//! universe only gates *which* faults are still tried — the parallel result
//! is bit-identical to the serial path: the same faults are detected, with
//! the same first-detecting pattern positions, for any worker count.
//!
//! Determinism is enforced structurally: the live worklist is snapshotted
//! and sorted by fault index, split into contiguous chunks, and the
//! per-chunk hits are merged back in chunk order — i.e. fault-index order —
//! before any detection state is mutated.

use eea_netlist::Circuit;

use crate::block::{BitBlock, DEFAULT_LANES};
use crate::ppsfp::WideFaultSim;
use crate::sim::WidePatternBlock;
use crate::universe::FaultUniverse;

/// Resolves a requested worker count: `0` means one worker per available
/// CPU; the `EEA_THREADS` environment variable overrides the request.
pub fn resolve_threads(requested: usize) -> usize {
    let requested = std::env::var("EEA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(requested);
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Worklist-parallel PPSFP simulator: the drop-in multi-worker counterpart
/// of [`WideFaultSim::detect_block`] and
/// [`WideFaultSim::detect_block_with_positions`].
///
/// Results are bit-identical to the serial [`WideFaultSim`] path at any
/// worker count (see the module docs); a one-worker instance degenerates to
/// the serial algorithm without spawning.
///
/// # Example
///
/// ```
/// use eea_netlist::bench_format;
/// use eea_faultsim::{FaultUniverse, ParFaultSim, PatternBlock};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = bench_format::parse(bench_format::C17)?;
/// let mut sim = ParFaultSim::new(&c, 4);
/// let mut universe = FaultUniverse::collapsed(&c);
/// let block = PatternBlock::exhaustive(&c).expect("5 inputs");
/// assert_eq!(sim.detect_block(&block, &mut universe), 22);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WideParFaultSim<'c, const L: usize> {
    sims: Vec<WideFaultSim<'c, L>>,
}

/// The default-width parallel PPSFP simulator: [`DEFAULT_LANES`] lanes.
pub type ParFaultSim<'c> = WideParFaultSim<'c, DEFAULT_LANES>;

impl<'c, const L: usize> WideParFaultSim<'c, L> {
    /// Creates a simulator with exactly `threads.max(1)` workers. Callers
    /// wanting the `0 = auto` / `EEA_THREADS` convention resolve via
    /// [`resolve_threads`] first.
    pub fn new(circuit: &'c Circuit, threads: usize) -> Self {
        let t = threads.max(1);
        WideParFaultSim {
            sims: (0..t).map(|_| WideFaultSim::new(circuit)).collect(),
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.sims.len()
    }

    /// Parallel counterpart of [`WideFaultSim::detect_block`]: marks every
    /// fault detected by `block` and returns how many were newly detected.
    pub fn detect_block(
        &mut self,
        block: &WidePatternBlock<L>,
        universe: &mut FaultUniverse,
    ) -> usize {
        let hits = self.scan(block, universe, true);
        for &(fi, _) in &hits {
            universe.mark_detected(fi as usize);
        }
        hits.len()
    }

    /// Parallel counterpart of
    /// [`WideFaultSim::detect_block_with_positions`]: returns `(fault
    /// index, first detecting pattern)` pairs sorted by fault index.
    pub fn detect_block_with_positions(
        &mut self,
        block: &WidePatternBlock<L>,
        universe: &mut FaultUniverse,
    ) -> Vec<(usize, u32)> {
        let hits = self.scan(block, universe, false);
        hits.into_iter()
            .map(|(fi, mask)| {
                universe.mark_detected(fi as usize);
                (fi as usize, mask.trailing_zeros())
            })
            .collect()
    }

    /// Scans the live worklist and returns `(fault index, detection mask)`
    /// pairs in fault-index order, without mutating the universe.
    fn scan(
        &mut self,
        block: &WidePatternBlock<L>,
        universe: &FaultUniverse,
        early_exit: bool,
    ) -> Vec<(u32, BitBlock<L>)> {
        // Snapshot and sort: the worklist itself is unordered (swap-remove),
        // but sorted contiguous chunks make the merged hit list fault-index
        // ordered for free.
        let mut live: Vec<u32> = universe.live().to_vec();
        live.sort_unstable();
        if live.is_empty() {
            return Vec::new();
        }
        let workers = self.sims.len().min(live.len());
        if workers <= 1 {
            return Self::scan_chunk(&mut self.sims[0], block, universe, &live, early_exit);
        }
        let chunk = live.len().div_ceil(workers);
        let mut merged: Vec<(u32, BitBlock<L>)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .sims
                .iter_mut()
                .zip(live.chunks(chunk))
                .map(|(sim, part)| {
                    s.spawn(move || Self::scan_chunk(sim, block, universe, part, early_exit))
                })
                .collect();
            for h in handles {
                // Workers are panic-free by policy; if one nevertheless
                // unwinds, re-raise its payload instead of unwrapping.
                match h.join() {
                    Ok(part) => merged.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        merged
    }

    fn scan_chunk(
        sim: &mut WideFaultSim<'c, L>,
        block: &WidePatternBlock<L>,
        universe: &FaultUniverse,
        faults: &[u32],
        early_exit: bool,
    ) -> Vec<(u32, BitBlock<L>)> {
        sim.run_good(block);
        faults
            .iter()
            .filter_map(|&fi| {
                let mask = sim.detect_mask(universe.fault(fi as usize), block, early_exit);
                mask.any().then_some((fi, mask))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppsfp::FaultSim;
    use crate::sim::PatternBlock;
    use eea_netlist::bench_format;
    use eea_netlist::{synthesize, SynthConfig};

    #[test]
    fn c17_exhaustive_matches_serial() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let block = PatternBlock::exhaustive(&c).unwrap();
        for threads in [1, 2, 4] {
            let mut sim = ParFaultSim::new(&c, threads);
            let mut u = FaultUniverse::collapsed(&c);
            assert_eq!(sim.detect_block(&block, &mut u), 22);
            assert_eq!(u.coverage(), 1.0);
        }
    }

    #[test]
    fn positions_match_serial_at_any_thread_count() {
        let c = synthesize(&SynthConfig {
            gates: 200,
            inputs: 12,
            dffs: 10,
            seed: 99,
            ..SynthConfig::default()
        }).expect("synthesizes");
        let mut rng = 0xDEAD_BEEF_1234_5678u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut blocks = Vec::new();
        for _ in 0..4 {
            // Full-width blocks: the parallel merge must stay bit-identical
            // with detections landing in every lane.
            let mut block = PatternBlock::zeroed(&c, PatternBlock::CAPACITY);
            block.fill_words(&mut next);
            blocks.push(block);
        }
        let mut serial_sim = FaultSim::new(&c);
        let mut serial_u = FaultUniverse::collapsed(&c);
        let serial: Vec<Vec<(usize, u32)>> = blocks
            .iter()
            .map(|b| serial_sim.detect_block_with_positions(b, &mut serial_u))
            .collect();
        for threads in [1, 3, 8] {
            let mut sim = ParFaultSim::new(&c, threads);
            let mut u = FaultUniverse::collapsed(&c);
            let par: Vec<Vec<(usize, u32)>> = blocks
                .iter()
                .map(|b| sim.detect_block_with_positions(b, &mut u))
                .collect();
            assert_eq!(par, serial, "threads = {threads}");
            assert_eq!(u.num_detected(), serial_u.num_detected());
        }
    }

    #[test]
    fn more_workers_than_faults() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut sim = ParFaultSim::new(&c, 64);
        let mut u = FaultUniverse::collapsed(&c);
        let block = PatternBlock::exhaustive(&c).unwrap();
        assert_eq!(sim.detect_block(&block, &mut u), 22);
    }

    #[test]
    fn resolve_threads_conventions() {
        // Explicit counts pass through untouched (EEA_THREADS may override
        // in a user environment; the test environment leaves it unset).
        if std::env::var("EEA_THREADS").is_err() {
            assert_eq!(resolve_threads(3), 3);
            assert!(resolve_threads(0) >= 1);
        }
    }
}
