use eea_netlist::Circuit;

use crate::collapsing::collapse;
use crate::fault::{enumerate_faults, Fault};

/// A point on a fault-coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Cumulative number of patterns applied.
    pub patterns: u64,
    /// Fault coverage in `[0, 1]`.
    pub coverage: f64,
}

/// The set of target faults of a circuit plus detection bookkeeping.
///
/// Coverage is reported over this universe. Use [`collapsed`](Self::collapsed)
/// for the equivalence-collapsed set (what the paper's fault counts refer
/// to) or [`full`](Self::full) for the raw universe.
#[derive(Debug, Clone)]
pub struct FaultUniverse {
    faults: Vec<Fault>,
    detected: Vec<bool>,
    num_detected: usize,
    curve: Vec<CoveragePoint>,
    /// Undetected fault indices, unordered (swap-remove on detection).
    /// Simulators iterate this worklist instead of scanning and skipping
    /// all faults, and it is the partitioning unit of the parallel path.
    live: Vec<u32>,
    /// Position of each fault in `live`, or `u32::MAX` once detected.
    live_pos: Vec<u32>,
}

impl FaultUniverse {
    /// Builds the equivalence-collapsed fault universe of `circuit`.
    pub fn collapsed(circuit: &Circuit) -> Self {
        Self::from_faults(collapse(circuit).representatives)
    }

    /// Builds the complete (uncollapsed) fault universe of `circuit`.
    pub fn full(circuit: &Circuit) -> Self {
        Self::from_faults(enumerate_faults(circuit))
    }

    /// Builds a universe over an explicit fault list.
    pub fn from_faults(faults: Vec<Fault>) -> Self {
        let n = faults.len();
        assert!(n <= u32::MAX as usize, "fault universe exceeds u32 indices");
        FaultUniverse {
            faults,
            detected: vec![false; n],
            num_detected: 0,
            curve: Vec::new(),
            live: (0..n as u32).collect(),
            live_pos: (0..n as u32).collect(),
        }
    }

    /// Number of target faults.
    #[inline]
    pub fn num_faults(&self) -> usize {
        self.faults.len()
    }

    /// The `i`-th fault.
    #[inline]
    pub fn fault(&self, i: usize) -> Fault {
        self.faults[i]
    }

    /// Whether the `i`-th fault has been detected.
    #[inline]
    pub fn is_detected(&self, i: usize) -> bool {
        self.detected[i]
    }

    /// Marks the `i`-th fault detected. Idempotent.
    pub fn mark_detected(&mut self, i: usize) {
        if !self.detected[i] {
            self.detected[i] = true;
            self.num_detected += 1;
            let p = self.live_pos[i] as usize;
            self.live.swap_remove(p);
            if p < self.live.len() {
                self.live_pos[self.live[p] as usize] = p as u32;
            }
            self.live_pos[i] = u32::MAX;
        }
    }

    /// The undetected-fault worklist, in unspecified order.
    #[inline]
    pub fn live(&self) -> &[u32] {
        &self.live
    }

    /// Number of undetected faults.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.live.len()
    }

    /// The fault index at worklist position `p`.
    #[inline]
    pub fn live_at(&self, p: usize) -> usize {
        self.live[p] as usize
    }

    /// Number of detected faults.
    #[inline]
    pub fn num_detected(&self) -> usize {
        self.num_detected
    }

    /// Fault coverage in `[0, 1]`; `1.0` for an empty universe.
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            1.0
        } else {
            self.num_detected as f64 / self.faults.len() as f64
        }
    }

    /// Iterator over the undetected faults with their indices.
    pub fn undetected(&self) -> impl Iterator<Item = (usize, Fault)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.detected[i])
            .map(|(i, &f)| (i, f))
    }

    /// Records a coverage-curve point after `patterns` cumulative patterns.
    pub fn record(&mut self, patterns: u64) {
        self.curve.push(CoveragePoint {
            patterns,
            coverage: self.coverage(),
        });
    }

    /// The recorded coverage curve.
    pub fn curve(&self) -> &[CoveragePoint] {
        &self.curve
    }

    /// Resets all detection state (keeps the fault list and clears the
    /// curve).
    pub fn reset(&mut self) {
        self.detected.iter_mut().for_each(|d| *d = false);
        self.num_detected = 0;
        self.curve.clear();
        let n = self.faults.len() as u32;
        self.live.clear();
        self.live.extend(0..n);
        self.live_pos.clear();
        self.live_pos.extend(0..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eea_netlist::bench_format;

    #[test]
    fn collapsed_smaller_than_full() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let full = FaultUniverse::full(&c);
        let col = FaultUniverse::collapsed(&c);
        assert!(col.num_faults() < full.num_faults());
        assert_eq!(col.num_faults(), 22);
    }

    #[test]
    fn detection_bookkeeping() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut u = FaultUniverse::collapsed(&c);
        assert_eq!(u.coverage(), 0.0);
        u.mark_detected(0);
        u.mark_detected(0); // idempotent
        assert_eq!(u.num_detected(), 1);
        assert!((u.coverage() - 1.0 / 22.0).abs() < 1e-12);
        assert_eq!(u.undetected().count(), 21);
    }

    #[test]
    fn curve_recording_and_reset() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut u = FaultUniverse::collapsed(&c);
        u.mark_detected(3);
        u.record(64);
        u.mark_detected(4);
        u.record(128);
        assert_eq!(u.curve().len(), 2);
        assert!(u.curve()[1].coverage > u.curve()[0].coverage);
        u.reset();
        assert_eq!(u.num_detected(), 0);
        assert!(u.curve().is_empty());
    }

    #[test]
    fn empty_universe_full_coverage() {
        let u = FaultUniverse::from_faults(Vec::new());
        assert_eq!(u.coverage(), 1.0);
        assert_eq!(u.num_live(), 0);
    }

    #[test]
    fn worklist_tracks_detection() {
        let c = bench_format::parse(bench_format::C17).unwrap();
        let mut u = FaultUniverse::collapsed(&c);
        let n = u.num_faults();
        assert_eq!(u.num_live(), n);
        // Detect a scattered subset (twice, checking idempotence) and
        // verify the worklist matches the detection flags exactly.
        for &i in &[0usize, 7, 21, 7, 3] {
            u.mark_detected(i);
        }
        assert_eq!(u.num_live(), n - 4);
        let mut live: Vec<usize> = u.live().iter().map(|&i| i as usize).collect();
        live.sort_unstable();
        let expect: Vec<usize> = (0..n).filter(|&i| !u.is_detected(i)).collect();
        assert_eq!(live, expect);
        // Worklist positions stay consistent under swap-remove.
        for p in 0..u.num_live() {
            assert!(!u.is_detected(u.live_at(p)));
        }
        u.reset();
        assert_eq!(u.num_live(), n);
        u.mark_detected(n - 1);
        assert_eq!(u.num_live(), n - 1);
    }
}
