// Library targets are panic-free by policy (see DESIGN.md, "Error
// taxonomy"): unwrap/expect/panic! are denied outside test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Single stuck-at fault model and bit-parallel fault simulation.
//!
//! This crate provides the structural-test substrate behind the paper's
//! *fault coverage* numbers: the fault coverage `c(b)` of a BIST session is
//! "the achieved stuck-at fault coverage \[Eldred'59\] and can be estimated
//! by means of fault simulation" (Section III of the paper).
//!
//! Contents:
//!
//! * [`Fault`]/[`FaultSite`] — stuck-at faults on gate output stems and
//!   input-pin branches,
//! * [`enumerate_faults`] + [`collapse`] — fault universe construction with
//!   structural equivalence collapsing (the paper quotes *collapsed* fault
//!   counts),
//! * [`BitBlock`] — the wide pattern word (`[u64; LANES]`, 512 patterns at
//!   the default width) every simulator is generic over,
//! * [`PatternBlock`]/[`GoodSim`] — bit-parallel logic simulation of the
//!   full-scan combinational core, one pattern per block bit,
//! * [`FaultSim`] — PPSFP (parallel-pattern single-fault propagation) with
//!   event-driven cone simulation and early exit,
//! * [`ParFaultSim`] — worklist-parallel PPSFP over `std::thread::scope`
//!   workers, bit-identical to the serial path at any thread count,
//! * [`FaultUniverse`] — detection bookkeeping and coverage curves.
//!
//! The unqualified names above are aliases of generic `Wide*` types pinned
//! to [`DEFAULT_LANES`]; the generics ([`WidePatternBlock`],
//! [`WideFaultSim`], …) accept any lane count, and lane count 1 is
//! bit-for-bit the classic 64-pattern `u64` path.
//!
//! # Example
//!
//! ```
//! use eea_netlist::bench_format;
//! use eea_faultsim::{FaultUniverse, FaultSim, PatternBlock};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let c = bench_format::parse(bench_format::C17)?;
//! let mut universe = FaultUniverse::collapsed(&c);
//! let mut sim = FaultSim::new(&c);
//! // Exhaustive 32-pattern test of the 5-input circuit fits one block:
//! let block = PatternBlock::exhaustive(&c).expect("few inputs");
//! sim.detect_block(&block, &mut universe);
//! assert!((universe.coverage() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

mod block;
mod collapsing;
mod fault;
mod par;
mod ppsfp;
mod sim;
mod transition;
mod universe;

pub use block::{BitBlock, DEFAULT_LANES};
pub use collapsing::{collapse, CollapseReport};
pub use fault::{enumerate_faults, Fault, FaultSite};
pub use par::{resolve_threads, ParFaultSim, WideParFaultSim};
pub use ppsfp::{FaultSim, WideFaultSim};
pub use sim::{
    GoodSim, PatternBlock, Response, WideGoodSim, WidePatternBlock, WideResponse,
};
pub use transition::{
    enumerate_transition_faults, launch_on_capture, transition_coverage, TransitionFault,
    TransitionKind, TransitionSim, WideTransitionSim,
};
pub use universe::{CoveragePoint, FaultUniverse};
