//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion API the workspace's benches use. Measurement
//! is a plain wall-clock sampler: a short warm-up, then up to `sample_size`
//! timed samples bounded by a per-function time budget, reporting the
//! median with min/max spread. No statistics beyond that, no plots, no
//! state between runs — the numbers are honest but the rigor of real
//! criterion is not reproduced.

use std::time::{Duration, Instant};

/// Per-function time budget; keeps full bench suites (and `cargo test`
/// runs of `harness = false` targets) bounded.
const BUDGET: Duration = Duration::from_secs(3);

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; the stub runs one setup per
/// iteration regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs `f` as the benchmark `name`. Accepts `&str`, `String`, or any
    /// other string-like id, as the real crate does.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let name = name.as_ref();
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group; the stub only uses it to prefix bench names.
    pub fn benchmark_group<N: AsRef<str>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs `f` as the benchmark `group/name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let name = name.as_ref();
        let mut b = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, one call per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        let started = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > BUDGET {
                break;
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            eprintln!("{name:<50} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        eprintln!(
            "{name:<50} time: [{} {} {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, with or without a custom
/// `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
