//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) subset of the proptest API the workspace's property tests
//! use, with the same semantics: a `proptest!` macro expanding each
//! parameterised test into a case loop, composable `Strategy` values with
//! `prop_map`/`prop_flat_map`, range and tuple and `any::<T>()` strategies,
//! `collection::vec`, and `prop_assert*` macros that fail the current case.
//!
//! Differences from real proptest are deliberate simplifications:
//!
//! * case generation is plain pseudo-random (SplitMix64 from the case
//!   index) — fully deterministic across runs, but without real proptest's
//!   coverage-guided sizing,
//! * failing cases are reported with their case index, not shrunk,
//! * `prop_assume!` discards the case without replacement.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// The case was rejected by `prop_assume!`.
    Reject(String),
}

/// Result type of a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator seeding each test case.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// RNG for the `case`-th case of a test.
    pub fn for_case(case: u64) -> Self {
        TestRng(case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `0` when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A composable generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.saturating_sub(self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end()).saturating_sub(*self.start()) as u64;
                self.start() + rng.below(span.saturating_add(1)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Types with a canonical unconstrained strategy ([`any`]).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T`; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} vs {:?})", format!($($fmt)+), l, r);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property failed on case {case}: {msg}");
                    }
                }
            }
        }
    )*};
}
